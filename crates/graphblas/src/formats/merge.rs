//! Skew-aware two-way merge kernels — the shared inner loop of the cascade
//! (DCSR ⊕ DCSR, DCSR ⊕ COO) and the read path (k-way cursor folds).
//!
//! Every hot loop of the hierarchical accumulator funnels through a merge
//! of two sorted index runs: a cascade merges a small settled batch into a
//! large lower level, a settle folds the pending tail into level 0, and a
//! cursor query folds colliding level rows on the fly.  On power-law
//! streams the *hot* rows collide in every level pair, so the merge of two
//! wildly different-sized runs is the common case — exactly where a
//! comparison-driven element-at-a-time walk is weakest.  This module picks
//! a strategy per colliding run, by shape:
//!
//! | condition (checked in order)     | strategy | cost |
//! |----------------------------------|----------|------|
//! | column ranges disjoint           | two bulk copies | `O(1)` check + memcpy |
//! | one side ≥ [`GALLOP_RATIO`]× larger | **gallop**: exponential probe + binary search through the large side, bulk-copy the skipped spans | `O(k log(n/k))` |
//! | comparable sizes                 | branchless two-pointer (unconditional write, conditional advance) | `O(n + m)`, no unpredictable branches |
//!
//! The previous element-at-a-time merge is retained verbatim
//! ([`merge_row_linear`]) as the verification fallback: the `*_linear`
//! entry points on [`Dcsr`](crate::formats::dcsr::Dcsr) run it end to end
//! and the `tests/merge_equivalence.rs` proptests pin the adaptive kernels
//! byte-identical to it.
//!
//! Strategy counters (process-global, relaxed atomics, committed once per
//! merge call) record how many elements each strategy processed, so a
//! benchmark can report *why* a workload got faster — see
//! [`merge_kernel_stats`].

use crate::index::Index;
use crate::ops::BinaryOp;
use crate::types::ScalarType;
use std::sync::atomic::{AtomicU64, Ordering};

/// Size-ratio crossover at which a colliding-run merge switches from the
/// branchless two-pointer kernel to galloping through the larger side.
///
/// Measured on the 1-core container by the `merge_rate` bench (forced
/// single-row strategies, large side 2^16, hash-jittered interleave): the
/// gallop kernel overtakes the linear walk at ratio 4 (3.5e8 vs 3.2e8
/// elems/s) and is decisively ahead of every alternative from ratio 8 up
/// (4.4e8 at 8, 9.7e8 at 128, vs ~2.7e8 linear / ~2.2e8 branchless).
/// Between ratios 2 and 8 the winner depends on collision density — dense
/// collisions make per-element gallops pure overhead — so 8 keeps the
/// switch on the side that wins under *every* measured pattern rather
/// than the collision-free best case.
pub const GALLOP_RATIO: usize = 8;

static GALLOPED: AtomicU64 = AtomicU64::new(0);
static BULK_ROW: AtomicU64 = AtomicU64::new(0);
static BRANCHLESS: AtomicU64 = AtomicU64::new(0);
static LINEAR: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-global merge strategy counters: how many
/// elements each kernel has processed since process start (or the last
/// [`reset_merge_kernel_stats`]).  "Processed" counts both operands of a
/// run — a galloped merge of a 4-element batch into a 4,096-element row
/// adds 4,100 to `galloped_elems`.
///
/// The counters are process-wide (all matrices, all shard workers) and
/// updated with relaxed atomics once per merge call, so they are a
/// *debugging and reporting* facility — cheap enough to stay always on,
/// not precise enough to order across threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeKernelStats {
    /// Elements processed by the galloping (exponential probe + bulk span
    /// copy) kernel on skewed colliding runs.
    pub galloped_elems: u64,
    /// Elements moved by whole-row / row-run bulk copies: runs of rows
    /// unique to one operand, and colliding rows whose column ranges the
    /// O(1) bounds check proved disjoint.
    pub bulk_row_elems: u64,
    /// Elements processed by the branchless two-pointer kernel on
    /// comparable-size colliding runs.
    pub branchless_elems: u64,
    /// Elements processed by the retained element-at-a-time fallback (the
    /// `*_linear` entry points used by equivalence tests and benches).
    pub linear_elems: u64,
}

impl MergeKernelStats {
    /// Total elements processed across all strategies.
    pub fn total(&self) -> u64 {
        self.galloped_elems + self.bulk_row_elems + self.branchless_elems + self.linear_elems
    }
}

/// Read the process-global strategy counters.
pub fn merge_kernel_stats() -> MergeKernelStats {
    MergeKernelStats {
        galloped_elems: GALLOPED.load(Ordering::Relaxed),
        bulk_row_elems: BULK_ROW.load(Ordering::Relaxed),
        branchless_elems: BRANCHLESS.load(Ordering::Relaxed),
        linear_elems: LINEAR.load(Ordering::Relaxed),
    }
}

/// Reset the process-global strategy counters to zero (benchmark harness
/// use; concurrent merges may land counts immediately after).
pub fn reset_merge_kernel_stats() {
    GALLOPED.store(0, Ordering::Relaxed);
    BULK_ROW.store(0, Ordering::Relaxed);
    BRANCHLESS.store(0, Ordering::Relaxed);
    LINEAR.store(0, Ordering::Relaxed);
}

/// Per-merge-call local tally: kernels add to plain integers on the hot
/// path and the owning merge commits them to the global atomics once.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MergeTally {
    pub(crate) galloped: u64,
    pub(crate) bulk_row: u64,
    pub(crate) branchless: u64,
    pub(crate) linear: u64,
}

impl MergeTally {
    /// Flush the tally into the process-global counters.
    pub(crate) fn commit(self) {
        if self.galloped != 0 {
            GALLOPED.fetch_add(self.galloped, Ordering::Relaxed);
        }
        if self.bulk_row != 0 {
            BULK_ROW.fetch_add(self.bulk_row, Ordering::Relaxed);
        }
        if self.branchless != 0 {
            BRANCHLESS.fetch_add(self.branchless, Ordering::Relaxed);
        }
        if self.linear != 0 {
            LINEAR.fetch_add(self.linear, Ordering::Relaxed);
        }
    }
}

/// Destination of a two-way merge.  The two layouts in the workspace —
/// plane-separated staging buffers (DCSR merges) and `(index, value)`
/// tuple vectors (cursor reads) — implement it, so the cascade and the
/// read path share one set of kernels, bulk span copies included.
pub(crate) trait MergeSink<T> {
    /// Emit one merged element.
    fn push(&mut self, col: Index, val: T);
    /// Emit a run of elements unique to one operand (a gallop-skipped span
    /// or a disjoint payload) — implementations bulk-copy.
    fn push_run(&mut self, cols: &[Index], vals: &[T]);
}

/// Plane-separated sink: the DCSR staging buffers.
pub(crate) struct PlaneSink<'a, T> {
    pub(crate) cols: &'a mut Vec<Index>,
    pub(crate) vals: &'a mut Vec<T>,
}

impl<T: ScalarType> MergeSink<T> for PlaneSink<'_, T> {
    fn push(&mut self, col: Index, val: T) {
        self.cols.push(col);
        self.vals.push(val);
    }

    fn push_run(&mut self, cols: &[Index], vals: &[T]) {
        self.cols.extend_from_slice(cols);
        self.vals.extend_from_slice(vals);
    }
}

/// Tuple sink: the cursor read path's `Vec<(index, value)>` output.
pub(crate) struct PairSink<'a, T> {
    pub(crate) out: &'a mut Vec<(Index, T)>,
}

impl<T: ScalarType> MergeSink<T> for PairSink<'_, T> {
    fn push(&mut self, col: Index, val: T) {
        self.out.push((col, val));
    }

    fn push_run(&mut self, cols: &[Index], vals: &[T]) {
        self.out
            .extend(cols.iter().copied().zip(vals.iter().copied()));
    }
}

/// Any `FnMut(Index, T)` emit callback is a sink (runs degrade to a loop —
/// the m-way cursor fold uses this to reuse the kernels under its
/// `&mut dyn FnMut` interface).
impl<T: ScalarType, F: FnMut(Index, T)> MergeSink<T> for F {
    fn push(&mut self, col: Index, val: T) {
        self(col, val);
    }

    fn push_run(&mut self, cols: &[Index], vals: &[T]) {
        for (&c, &v) in cols.iter().zip(vals.iter()) {
            self(c, v);
        }
    }
}

/// Galloping bound finder: the first position `>= from` where
/// `keep(ids[pos])` turns false, assuming `keep` is true on a (possibly
/// empty) prefix of `ids[from..]` — exponential probe doubling away from
/// `from`, then binary search inside the bracketed window.  Cost is
/// `O(log d)` in the distance `d` advanced, so a frontier that advances a
/// long way pays per *skip*, not per element skipped.
pub(crate) fn gallop_while<F: Fn(Index) -> bool>(ids: &[Index], from: usize, keep: F) -> usize {
    let n = ids.len();
    if from >= n || !keep(ids[from]) {
        return from;
    }
    // Invariant: keep(ids[lo]) is true.
    let mut lo = from;
    let mut step = 1usize;
    while lo + step < n && keep(ids[lo + step]) {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(n);
    lo + 1 + ids[lo + 1..hi].partition_point(|&x| keep(x))
}

/// The retained element-at-a-time two-pointer merge (the pre-overhaul
/// kernel, verbatim): set-union on the columns, `op` on collisions with
/// the `a` side as the left operand.
pub(crate) fn merge_row_linear<T: ScalarType, Op: BinaryOp<T>, S: MergeSink<T>>(
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    sink: &mut S,
    tally: &mut MergeTally,
) {
    let (mut ja, mut jb) = (0usize, 0usize);
    while ja < ca.len() || jb < cb.len() {
        match (ca.get(ja), cb.get(jb)) {
            (Some(&a), Some(&b)) if a == b => {
                sink.push(a, op.apply(va[ja], vb[jb]));
                ja += 1;
                jb += 1;
            }
            (Some(&a), Some(&b)) if a < b => {
                sink.push(a, va[ja]);
                ja += 1;
            }
            (Some(_), Some(&b)) => {
                sink.push(b, vb[jb]);
                jb += 1;
            }
            (Some(&a), None) => {
                sink.push(a, va[ja]);
                ja += 1;
            }
            (None, Some(&b)) => {
                sink.push(b, vb[jb]);
                jb += 1;
            }
            (None, None) => break,
        }
    }
    tally.linear += (ca.len() + cb.len()) as u64;
}

/// Skew-aware adaptive merge of two sorted runs: picks disjoint bulk copy,
/// gallop, or branchless two-pointer by shape (see the module docs).
/// Output and operator semantics are byte-identical to
/// [`merge_row_linear`]: ascending unique columns, `op.apply(a, b)` on
/// collisions with `a` as the left operand.
pub(crate) fn merge_row_adaptive<T: ScalarType, Op: BinaryOp<T>, S: MergeSink<T>>(
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    sink: &mut S,
    tally: &mut MergeTally,
) {
    let (n, m) = (ca.len(), cb.len());
    if m == 0 {
        sink.push_run(ca, va);
        tally.bulk_row += n as u64;
        return;
    }
    if n == 0 {
        sink.push_run(cb, vb);
        tally.bulk_row += m as u64;
        return;
    }
    // O(1) bounds check: disjoint column ranges need no walk at all.
    if ca[n - 1] < cb[0] {
        sink.push_run(ca, va);
        sink.push_run(cb, vb);
        tally.bulk_row += (n + m) as u64;
        return;
    }
    if cb[m - 1] < ca[0] {
        sink.push_run(cb, vb);
        sink.push_run(ca, va);
        tally.bulk_row += (n + m) as u64;
        return;
    }
    if n >= GALLOP_RATIO * m {
        merge_row_gallop_large_a(ca, va, cb, vb, op, sink);
        tally.galloped += (n + m) as u64;
    } else if m >= GALLOP_RATIO * n {
        merge_row_gallop_large_b(ca, va, cb, vb, op, sink);
        tally.galloped += (n + m) as u64;
    } else {
        merge_row_branchless(ca, va, cb, vb, op, sink);
        tally.branchless += (n + m) as u64;
    }
}

/// Gallop kernel, `a` the large side: for each `b` element, gallop the `a`
/// frontier to its insertion point, bulk-copy the skipped span, and emit
/// the element (folded under `op` if `a` holds the same column).
fn merge_row_gallop_large_a<T: ScalarType, Op: BinaryOp<T>, S: MergeSink<T>>(
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    sink: &mut S,
) {
    let mut ia = 0usize;
    for (jb, &b) in cb.iter().enumerate() {
        let lo = gallop_while(ca, ia, |x| x < b);
        if lo > ia {
            sink.push_run(&ca[ia..lo], &va[ia..lo]);
        }
        if lo < ca.len() && ca[lo] == b {
            sink.push(b, op.apply(va[lo], vb[jb]));
            ia = lo + 1;
        } else {
            sink.push(b, vb[jb]);
            ia = lo;
        }
    }
    if ia < ca.len() {
        sink.push_run(&ca[ia..], &va[ia..]);
    }
}

/// Gallop kernel, `b` the large side (mirror of
/// [`merge_row_gallop_large_a`], preserving the `op.apply(a, b)` operand
/// order on collisions).
fn merge_row_gallop_large_b<T: ScalarType, Op: BinaryOp<T>, S: MergeSink<T>>(
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    sink: &mut S,
) {
    let mut jb = 0usize;
    for (ja, &a) in ca.iter().enumerate() {
        let lo = gallop_while(cb, jb, |x| x < a);
        if lo > jb {
            sink.push_run(&cb[jb..lo], &vb[jb..lo]);
        }
        if lo < cb.len() && cb[lo] == a {
            sink.push(a, op.apply(va[ja], vb[lo]));
            jb = lo + 1;
        } else {
            sink.push(a, va[ja]);
            jb = lo;
        }
    }
    if jb < cb.len() {
        sink.push_run(&cb[jb..], &vb[jb..]);
    }
}

/// Branchless two-pointer merge for comparable-size runs: every iteration
/// performs one unconditional write and two conditional advances, so the
/// selects compile to conditional moves over the plane-separated buffers
/// instead of a three-way compare branch the predictor loses on random
/// column interleavings.
///
/// Truly branchless value selection needs `op` applied *speculatively* —
/// on every operand pair, discarding the result unless the columns
/// actually collide — which is only sound for operators that declare
/// [`BinaryOp::SPECULATION_SAFE`] (all built-ins).  Other operators keep
/// a guarded select that branches on the collision case.
fn merge_row_branchless<T: ScalarType, Op: BinaryOp<T>, S: MergeSink<T>>(
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    sink: &mut S,
) {
    let (n, m) = (ca.len(), cb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let a = ca[i];
        let b = cb[j];
        let take_a = a <= b;
        let take_b = b <= a;
        let col = if take_a { a } else { b };
        let val = if Op::SPECULATION_SAFE {
            // Total, pure `op`: evaluate unconditionally and select among
            // the three candidates with conditional moves.
            let fused = op.apply(va[i], vb[j]);
            let one_sided = if take_a { va[i] } else { vb[j] };
            if take_a && take_b {
                fused
            } else {
                one_sided
            }
        } else if !take_b {
            va[i]
        } else if !take_a {
            vb[j]
        } else {
            // `op` may panic (user-defined): fire only on a true collision.
            op.apply(va[i], vb[j])
        };
        sink.push(col, val);
        i += take_a as usize;
        j += take_b as usize;
    }
    if i < n {
        sink.push_run(&ca[i..], &va[i..]);
    }
    if j < m {
        sink.push_run(&cb[j..], &vb[j..]);
    }
}

/// Strategy selector for the isolated-kernel entry point used by the
/// `merge_rate` crossover sweep.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowMergeStrategy {
    /// The adaptive dispatch (what production merges run).
    Adaptive,
    /// Force the element-at-a-time fallback.
    Linear,
    /// Force the gallop kernel (larger side galloped).
    Gallop,
    /// Force the branchless two-pointer kernel.
    Branchless,
}

/// Isolated single-run merge into plane-separated output vectors with a
/// forced strategy — the `merge_rate` benchmark measures the crossover
/// constant with this, outside any DCSR structure.  Not part of the
/// supported API.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn merge_row_into_planes<T: ScalarType, Op: BinaryOp<T>>(
    strategy: RowMergeStrategy,
    ca: &[Index],
    va: &[T],
    cb: &[Index],
    vb: &[T],
    op: Op,
    out_cols: &mut Vec<Index>,
    out_vals: &mut Vec<T>,
) {
    let mut tally = MergeTally::default();
    let mut sink = PlaneSink {
        cols: out_cols,
        vals: out_vals,
    };
    match strategy {
        RowMergeStrategy::Adaptive => merge_row_adaptive(ca, va, cb, vb, op, &mut sink, &mut tally),
        RowMergeStrategy::Linear => merge_row_linear(ca, va, cb, vb, op, &mut sink, &mut tally),
        RowMergeStrategy::Gallop => {
            if ca.len() >= cb.len() {
                merge_row_gallop_large_a(ca, va, cb, vb, op, &mut sink);
            } else {
                merge_row_gallop_large_b(ca, va, cb, vb, op, &mut sink);
            }
            tally.galloped += (ca.len() + cb.len()) as u64;
        }
        RowMergeStrategy::Branchless => {
            merge_row_branchless(ca, va, cb, vb, op, &mut sink);
            tally.branchless += (ca.len() + cb.len()) as u64;
        }
    }
    tally.commit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{First, Max, Min, Plus, Second};

    type Pairs = Vec<(Index, u64)>;

    fn run_both<Op: BinaryOp<u64> + Copy>(
        ca: &[Index],
        va: &[u64],
        cb: &[Index],
        vb: &[u64],
        op: Op,
    ) -> (Pairs, Pairs) {
        let mut tally = MergeTally::default();
        let mut adaptive = Vec::new();
        {
            let mut sink = PairSink { out: &mut adaptive };
            merge_row_adaptive(ca, va, cb, vb, op, &mut sink, &mut tally);
        }
        let mut linear = Vec::new();
        {
            let mut sink = PairSink { out: &mut linear };
            merge_row_linear(ca, va, cb, vb, op, &mut sink, &mut tally);
        }
        tally.commit();
        (adaptive, linear)
    }

    #[test]
    fn gallop_while_finds_bounds() {
        let ids: Vec<Index> = vec![1, 3, 5, 7, 9, 11, 13];
        for from in 0..=ids.len() {
            for bound in 0..16u64 {
                let got = gallop_while(&ids, from, |x| x < bound);
                let mut expect = from;
                while expect < ids.len() && ids[expect] < bound {
                    expect += 1;
                }
                assert_eq!(got, expect, "from={from} bound={bound}");
            }
        }
        assert_eq!(gallop_while(&[], 0, |_| true), 0);
        assert_eq!(gallop_while(&ids, 99, |_| true), 99);
    }

    #[test]
    fn adaptive_matches_linear_on_shapes() {
        // Disjoint (both orders), skewed (both directions), comparable,
        // identical, nested.
        let big: Vec<Index> = (0..1000).map(|i| i * 3).collect();
        let bigv: Vec<u64> = (0..1000u64).collect();
        let shapes: Vec<(Vec<Index>, Vec<Index>)> = vec![
            (vec![1, 2, 3], vec![10, 11]),
            (vec![10, 11], vec![1, 2, 3]),
            (big.clone(), vec![7, 500, 2995]),
            (vec![7, 500, 2995], big.clone()),
            (vec![2, 4, 6, 8], vec![1, 4, 5, 8, 9]),
            (big.clone(), big.clone()),
            (big.clone(), vec![900, 903, 906]),
            (Vec::new(), vec![1, 2]),
            (vec![1, 2], Vec::new()),
        ];
        for (ca, cb) in shapes {
            let va: Vec<u64> = (0..ca.len() as u64).map(|i| i + 100).collect();
            let vb: Vec<u64> = (0..cb.len() as u64).map(|i| i + 900).collect();
            let (a, l) = run_both(&ca, &va, &cb, &vb, Plus);
            assert_eq!(a, l, "Plus {}x{}", ca.len(), cb.len());
            let (a, l) = run_both(&ca, &va, &cb, &vb, First);
            assert_eq!(a, l, "First {}x{}", ca.len(), cb.len());
            let (a, l) = run_both(&ca, &va, &cb, &vb, Second);
            assert_eq!(a, l, "Second {}x{}", ca.len(), cb.len());
            let (a, l) = run_both(&ca, &va, &cb, &vb, Min);
            assert_eq!(a, l, "Min {}x{}", ca.len(), cb.len());
            let (a, l) = run_both(&ca, &va, &cb, &vb, Max);
            assert_eq!(a, l, "Max {}x{}", ca.len(), cb.len());
        }
        assert_eq!(bigv.len(), 1000);
    }

    #[test]
    fn forced_strategies_agree() {
        let ca: Vec<Index> = (0..256).map(|i| i * 2).collect();
        let va: Vec<u64> = (0..256u64).collect();
        let cb: Vec<Index> = vec![3, 4, 100, 511];
        let vb: Vec<u64> = vec![1, 2, 3, 4];
        let mut expect_c = Vec::new();
        let mut expect_v = Vec::new();
        merge_row_into_planes(
            RowMergeStrategy::Linear,
            &ca,
            &va,
            &cb,
            &vb,
            Plus,
            &mut expect_c,
            &mut expect_v,
        );
        for strategy in [
            RowMergeStrategy::Adaptive,
            RowMergeStrategy::Gallop,
            RowMergeStrategy::Branchless,
        ] {
            let mut got_c = Vec::new();
            let mut got_v = Vec::new();
            merge_row_into_planes(strategy, &ca, &va, &cb, &vb, Plus, &mut got_c, &mut got_v);
            assert_eq!(got_c, expect_c, "{strategy:?}");
            assert_eq!(got_v, expect_v, "{strategy:?}");
        }
    }

    #[test]
    fn counters_accumulate_per_strategy() {
        // Process-global counters: other tests merge concurrently, so only
        // assert monotone growth of the strategies this test exercises.
        let before = merge_kernel_stats();
        let ca: Vec<Index> = (0..1024).collect();
        let va: Vec<u64> = vec![1; 1024];
        let mut tally = MergeTally::default();
        let mut out: Vec<(Index, u64)> = Vec::new();
        {
            let mut sink = PairSink { out: &mut out };
            // Skewed: gallop.
            merge_row_adaptive(&ca, &va, &[5, 600], &[1, 1], Plus, &mut sink, &mut tally);
            // Disjoint: bulk.
            merge_row_adaptive(&ca, &va, &[5000], &[1], Plus, &mut sink, &mut tally);
            // Comparable: branchless.
            merge_row_adaptive(
                &ca[..4],
                &va[..4],
                &[1, 5, 7],
                &[1, 1, 1],
                Plus,
                &mut sink,
                &mut tally,
            );
        }
        assert_eq!(tally.galloped, 1026);
        assert_eq!(tally.bulk_row, 1025);
        assert_eq!(tally.branchless, 7);
        tally.commit();
        let after = merge_kernel_stats();
        assert!(after.galloped_elems >= before.galloped_elems + 1026);
        assert!(after.bulk_row_elems >= before.bulk_row_elems + 1025);
        assert!(after.branchless_elems >= before.branchless_elems + 7);
        assert!(after.total() > before.total());
    }
}
