//! Sparse storage formats.
//!
//! | Format | Memory | Best at | Used for |
//! |--------|--------|---------|----------|
//! | [`coo::Coo`]   | `O(nnz)`             | appending unsorted tuples        | construction, pending updates |
//! | [`dcsr::Dcsr`] | `O(nnz + #non-empty rows)` | row-wise traversal, merging | the compressed "settled" form of every matrix (hypersparse-safe) |
//! | [`csr::Csr`]   | `O(nnz + nrows)`     | dense-ish row spaces             | comparison baseline; breaks down for 2^32-row traffic matrices |
//! | [`dok::Dok`]   | `O(nnz)` hash map    | random single-element updates    | comparison baseline for streaming inserts |
//!
//! The paper's argument is about which of these an *update stream* should
//! touch and when: appending to a small COO/DCSR in cache is cheap; merging
//! into a large DCSR in DRAM is expensive; hence the hierarchy.

pub mod coo;
pub mod csr;
pub mod dcsr;
pub mod dok;
pub mod merge;

use crate::index::Index;

/// A single stored entry `(row, col, value)`.
pub type Entry<T> = (Index, Index, T);

/// Summary of the memory consumed by a sparse structure, in bytes.
///
/// These figures drive the memory-hierarchy placement decisions in
/// `hyperstream-memsim` and the statistics reported by the hierarchical
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Bytes used by index arrays (row ids, row pointers, column ids).
    pub index_bytes: usize,
    /// Bytes used by the stored values.
    pub value_bytes: usize,
}

impl MemoryFootprint {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.index_bytes + self.value_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_total() {
        let f = MemoryFootprint {
            index_bytes: 100,
            value_bytes: 28,
        };
        assert_eq!(f.total(), 128);
        assert_eq!(MemoryFootprint::default().total(), 0);
    }
}
