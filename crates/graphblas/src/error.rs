//! Error types mirroring the GraphBLAS C API error codes.

use std::fmt;

/// Result alias used throughout the crate.
pub type GrbResult<T> = Result<T, GrbError>;

/// Errors reported by GraphBLAS-style operations.
///
/// The variants correspond to the `GrB_Info` error codes of the C API that
/// are reachable from safe Rust (out-of-memory and panic-related codes are
/// handled by the Rust runtime instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// A row or column index is outside the matrix dimensions.
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The dimension it was compared against.
        dim: u64,
    },
    /// Two objects have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An operation received an empty object where a non-empty one is required.
    EmptyObject(&'static str),
    /// A domain error: the value cannot be represented in the output type.
    Domain(String),
    /// The requested entry does not exist (GrB_NO_VALUE).
    NoValue,
    /// An invalid argument value (e.g. zero dimension, malformed cut list).
    InvalidValue(String),
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            GrbError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            GrbError::EmptyObject(what) => write!(f, "empty object: {what}"),
            GrbError::Domain(msg) => write!(f, "domain error: {msg}"),
            GrbError::NoValue => write!(f, "no value stored at the requested position"),
            GrbError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for GrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GrbError::IndexOutOfBounds { index: 10, dim: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = GrbError::DimensionMismatch {
            detail: "2x3 vs 4x5".into(),
        };
        assert!(e.to_string().contains("2x3 vs 4x5"));

        let e = GrbError::EmptyObject("cut list");
        assert!(e.to_string().contains("cut list"));

        let e = GrbError::Domain("negative".into());
        assert!(e.to_string().contains("negative"));

        assert!(GrbError::NoValue.to_string().contains("no value"));

        let e = GrbError::InvalidValue("zero dim".into());
        assert!(e.to_string().contains("zero dim"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GrbError::NoValue, GrbError::NoValue);
        assert_ne!(GrbError::NoValue, GrbError::EmptyObject("x"),);
    }
}
