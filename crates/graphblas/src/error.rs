//! Error types mirroring the GraphBLAS C API error codes.

use std::fmt;

/// Result alias used throughout the crate.
pub type GrbResult<T> = Result<T, GrbError>;

/// Errors reported by GraphBLAS-style operations.
///
/// The variants correspond to the `GrB_Info` error codes of the C API that
/// are reachable from safe Rust (out-of-memory and panic-related codes are
/// handled by the Rust runtime instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrbError {
    /// A row or column index is outside the matrix dimensions.
    IndexOutOfBounds {
        /// The offending index.
        index: u64,
        /// The dimension it was compared against.
        dim: u64,
    },
    /// Two objects have incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An operation received an empty object where a non-empty one is required.
    EmptyObject(&'static str),
    /// A domain error: the value cannot be represented in the output type.
    Domain(String),
    /// The requested entry does not exist (GrB_NO_VALUE).
    NoValue,
    /// An invalid argument value (e.g. zero dimension, malformed cut list).
    InvalidValue(String),
    /// A supervised engine lost one or more worker threads (panic or
    /// channel closure).  `shards` lists the dead shard indices; `detail`
    /// carries the first captured panic message, if any.
    ShardsLost {
        /// Indices of the lost shards.
        shards: Vec<usize>,
        /// Captured panic message or closure description.
        detail: String,
    },
    /// A bounded wait on an engine component elapsed before completion.
    /// The component may still finish later; the caller's wait is over.
    Timeout {
        /// What was being waited on.
        what: &'static str,
        /// The configured bound, in milliseconds.
        after_ms: u64,
    },
    /// An error injected by the fault-injection harness (the `failpoints`
    /// feature).  Never constructed in production builds.
    Injected(&'static str),
    /// A durable-store failure: on-disk data failed strict validation
    /// (bad magic, checksum mismatch, out-of-bounds section, invariant
    /// violation) or an I/O operation on the store failed.  Parsers return
    /// this instead of panicking, whatever the input bytes.
    Corruption {
        /// What failed validation and where.
        detail: String,
    },
}

impl fmt::Display for GrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrbError::IndexOutOfBounds { index, dim } => {
                write!(f, "index {index} out of bounds for dimension {dim}")
            }
            GrbError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            GrbError::EmptyObject(what) => write!(f, "empty object: {what}"),
            GrbError::Domain(msg) => write!(f, "domain error: {msg}"),
            GrbError::NoValue => write!(f, "no value stored at the requested position"),
            GrbError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            GrbError::ShardsLost { shards, detail } => {
                write!(f, "lost shard workers {shards:?}: {detail}")
            }
            GrbError::Timeout { what, after_ms } => {
                write!(f, "timed out waiting on {what} after {after_ms} ms")
            }
            GrbError::Injected(site) => write!(f, "injected fault at failpoint '{site}'"),
            GrbError::Corruption { detail } => {
                write!(f, "durable store corruption: {detail}")
            }
        }
    }
}

impl std::error::Error for GrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GrbError::IndexOutOfBounds { index: 10, dim: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = GrbError::DimensionMismatch {
            detail: "2x3 vs 4x5".into(),
        };
        assert!(e.to_string().contains("2x3 vs 4x5"));

        let e = GrbError::EmptyObject("cut list");
        assert!(e.to_string().contains("cut list"));

        let e = GrbError::Domain("negative".into());
        assert!(e.to_string().contains("negative"));

        assert!(GrbError::NoValue.to_string().contains("no value"));

        let e = GrbError::InvalidValue("zero dim".into());
        assert!(e.to_string().contains("zero dim"));

        let e = GrbError::ShardsLost {
            shards: vec![2, 5],
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("[2, 5]"));
        assert!(e.to_string().contains("boom"));

        let e = GrbError::Timeout {
            what: "drain barrier",
            after_ms: 750,
        };
        assert!(e.to_string().contains("drain barrier"));
        assert!(e.to_string().contains("750"));

        let e = GrbError::Injected("worker-apply");
        assert!(e.to_string().contains("worker-apply"));

        let e = GrbError::Corruption {
            detail: "level 2: section crc mismatch".into(),
        };
        assert!(e.to_string().contains("corruption"));
        assert!(e.to_string().contains("section crc mismatch"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GrbError::NoValue, GrbError::NoValue);
        assert_ne!(GrbError::NoValue, GrbError::EmptyObject("x"),);
    }
}
