//! # hyperstream-graphblas
//!
//! A pure-Rust, hypersparse-first implementation of the subset of the
//! [GraphBLAS](https://graphblas.org) standard needed by hierarchical
//! hypersparse streaming matrices (Kepner et al., 2020).
//!
//! The design goals mirror SuiteSparse:GraphBLAS, which the paper builds on:
//!
//! * **Hypersparse storage** — a matrix whose index space is `2^64 × 2^64`
//!   but that holds only a handful of entries must cost `O(nnz)` memory, not
//!   `O(n)`.  The primary storage format is DCSR (doubly compressed sparse
//!   row): only non-empty rows are represented.
//! * **Algebraic generality** — operations are parameterised by
//!   [`BinaryOp`](ops::BinaryOp), [`Monoid`](ops::Monoid) and
//!   [`Semiring`](ops::Semiring), so the same kernels implement ordinary
//!   arithmetic, min-plus path algebra, boolean reachability, etc.  The
//!   hierarchical cascade of the `hyperstream-hier` crate relies on monoid
//!   addition being associative and commutative.
//! * **Lazy updates** — like SuiteSparse, [`Matrix::set_element`] and
//!   [`Matrix::accum_element`] append to a *pending tuple* buffer that is
//!   folded into the compressed structure on [`Matrix::wait`] (or implicitly
//!   by any whole-matrix operation).  This is the single-level ancestor of
//!   the paper's multi-level hierarchy.
//!
//! ## Quick example
//!
//! ```
//! use hyperstream_graphblas::prelude::*;
//!
//! // A hypersparse 2^32 x 2^32 traffic matrix.
//! let dim = 1u64 << 32;
//! let mut a = Matrix::<u64>::new(dim, dim);
//! a.accum_element(123_456_789, 42, 1);
//! a.accum_element(123_456_789, 42, 1);          // accumulates (+)
//! a.accum_element(7, 9_999_999_999 % dim, 5);
//! assert_eq!(a.nvals(), 2);
//! assert_eq!(a.get(123_456_789, 42), Some(2));
//!
//! // GraphBLAS element-wise add (set union under +).
//! let mut b = Matrix::<u64>::new(dim, dim);
//! b.accum_element(7, 9_999_999_999 % dim, 10);
//! let c = ewise_add(&a, &b, Plus);
//! assert_eq!(c.get(7, 9_999_999_999 % dim), Some(15));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod index;
pub mod types;

pub mod ops;

pub mod formats;

pub mod cursor;
pub mod degree_index;
pub mod matrix;
pub mod reader;
pub mod sink;
pub mod snapshot;
pub mod vector;

pub mod mask;

pub mod algo;

pub use degree_index::{DegreeIndex, DegreeIndexView};
pub use error::{GrbError, GrbResult};
pub use formats::dcsr::MergeScratch;
pub use formats::merge::{merge_kernel_stats, reset_merge_kernel_stats, MergeKernelStats};
pub use index::{validate_dims, validate_index, Index};
pub use matrix::Matrix;
pub use ops::spa::{reset_spa_kernel_stats, spa_kernel_stats, SpaKernelStats, SpaScratch};
pub use reader::{CursorReader, MatrixReader, StreamingSystem};
pub use sink::StreamingSink;
pub use snapshot::MatrixSnapshot;
pub use types::ScalarType;
pub use vector::SparseVector;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::degree_index::{DegreeIndex, DegreeIndexView};
    pub use crate::error::{GrbError, GrbResult};
    pub use crate::formats::coo::Coo;
    pub use crate::formats::csr::Csr;
    pub use crate::formats::dcsr::Dcsr;
    pub use crate::formats::dok::Dok;
    pub use crate::index::Index;
    pub use crate::mask::Mask;
    pub use crate::mask::VectorMask;
    pub use crate::matrix::Matrix;
    pub use crate::ops::apply::apply;
    pub use crate::ops::binary::{
        Div, First, Land, Lor, Lxor, Max, Min, Minus, Plus, Second, Times,
    };
    pub use crate::ops::ewise_add::{ewise_add, ewise_add_into, ewise_add_monoid};
    pub use crate::ops::ewise_mult::ewise_mult;
    pub use crate::ops::extract::{extract, extract_col, extract_row};
    pub use crate::ops::kron::kron;
    pub use crate::ops::monoid::{
        LandMonoid, LorMonoid, MaxMonoid, MinMonoid, PlusMonoid, TimesMonoid,
    };
    pub use crate::ops::mxm::{mxm, mxm_btree, try_mxm_with};
    pub use crate::ops::mxv::{mxv, try_vxm_with, vxm, vxm_btree};
    pub use crate::ops::reader_mx::{
        mxm_reader, mxm_reader_masked, mxv_reader, mxv_reader_masked, vxm_pattern_levels,
        vxm_reader, vxm_reader_masked, PatternAdd,
    };
    pub use crate::ops::reduce::{reduce_cols, reduce_rows, reduce_scalar};
    pub use crate::ops::select::{select, SelectOp};
    pub use crate::ops::semiring::{MaxPlus, MinPlus, PlusTimes};
    pub use crate::ops::spa::{
        reset_spa_kernel_stats, spa_kernel_stats, SpaKernelStats, SpaScratch,
    };
    pub use crate::ops::transpose::transpose;
    pub use crate::ops::unary::{AInv, Abs, Identity, MInv, One};
    pub use crate::ops::{BinaryOp, Monoid, Semiring, UnaryOp};
    pub use crate::reader::{read_tuples, CursorReader, MatrixReader, StreamingSystem};
    pub use crate::sink::StreamingSink;
    pub use crate::snapshot::MatrixSnapshot;
    pub use crate::types::ScalarType;
    pub use crate::vector::SparseVector;
}
