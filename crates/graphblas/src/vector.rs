//! Sparse vectors (`GrB_Vector` equivalent).
//!
//! A sparse vector is stored as parallel sorted `(index, value)` arrays.
//! Vectors appear in the traffic-analysis examples as row/column reductions
//! of a traffic matrix — packets per source, packets per destination — and
//! as the operands of `mxv`/`vxm`.

use crate::error::{GrbError, GrbResult};
use crate::index::{validate_index, Index};
use crate::ops::{BinaryOp, Monoid};
use crate::types::ScalarType;

/// A sparse vector of logical length `size`.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector<T> {
    size: Index,
    idx: Vec<Index>,
    vals: Vec<T>,
}

impl<T: ScalarType> SparseVector<T> {
    /// An empty vector of logical length `size`.
    pub fn new(size: Index) -> Self {
        Self::try_new(size).expect("invalid vector size")
    }

    /// Fallible constructor.
    pub fn try_new(size: Index) -> GrbResult<Self> {
        if size == 0 {
            return Err(GrbError::InvalidValue(
                "vector size must be non-zero".into(),
            ));
        }
        Ok(Self {
            size,
            idx: Vec::new(),
            vals: Vec::new(),
        })
    }

    /// Build from `(index, value)` tuples, combining duplicates with `dup`.
    pub fn from_tuples<Op: BinaryOp<T>>(
        size: Index,
        indices: &[Index],
        values: &[T],
        dup: Op,
    ) -> GrbResult<Self> {
        if indices.len() != values.len() {
            return Err(GrbError::DimensionMismatch {
                detail: "index/value slice lengths differ".into(),
            });
        }
        let mut v = Self::try_new(size)?;
        let mut pairs: Vec<(Index, T)> = Vec::with_capacity(indices.len());
        for (&i, &val) in indices.iter().zip(values) {
            validate_index(i, size)?;
            pairs.push((i, val));
        }
        pairs.sort_by_key(|&(i, _)| i);
        for (i, val) in pairs {
            if v.idx.last() == Some(&i) {
                let last = v.vals.last_mut().expect("vals non-empty");
                *last = dup.apply(*last, val);
            } else {
                v.idx.push(i);
                v.vals.push(val);
            }
        }
        Ok(v)
    }

    /// Logical length.
    pub fn size(&self) -> Index {
        self.size
    }

    /// Number of stored entries.
    pub fn nvals(&self) -> usize {
        self.idx.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Stored value at `i`, or `None`.
    pub fn get(&self, i: Index) -> Option<T> {
        let k = self.idx.binary_search(&i).ok()?;
        Some(self.vals[k])
    }

    /// Set (overwrite) the value at `i`.
    pub fn set(&mut self, i: Index, val: T) -> GrbResult<()> {
        validate_index(i, self.size)?;
        match self.idx.binary_search(&i) {
            Ok(k) => self.vals[k] = val,
            Err(k) => {
                self.idx.insert(k, i);
                self.vals.insert(k, val);
            }
        }
        Ok(())
    }

    /// Accumulate `val` into position `i` under `op`.
    pub fn accum<Op: BinaryOp<T>>(&mut self, i: Index, val: T, op: Op) -> GrbResult<()> {
        validate_index(i, self.size)?;
        match self.idx.binary_search(&i) {
            Ok(k) => self.vals[k] = op.apply(self.vals[k], val),
            Err(k) => {
                self.idx.insert(k, i);
                self.vals.insert(k, val);
            }
        }
        Ok(())
    }

    /// Iterate over stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, T)> + '_ {
        self.idx.iter().zip(&self.vals).map(|(&i, &v)| (i, v))
    }

    /// Element-wise union with another vector under `op`.
    pub fn ewise_add<Op: BinaryOp<T>>(&self, other: &Self, op: Op) -> GrbResult<Self> {
        if self.size != other.size {
            return Err(GrbError::DimensionMismatch {
                detail: format!("vector sizes {} vs {}", self.size, other.size),
            });
        }
        let mut out = Self::new(self.size);
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.idx.len() || b < other.idx.len() {
            match (self.idx.get(a), other.idx.get(b)) {
                (Some(&ia), Some(&ib)) if ia == ib => {
                    out.idx.push(ia);
                    out.vals.push(op.apply(self.vals[a], other.vals[b]));
                    a += 1;
                    b += 1;
                }
                (Some(&ia), Some(&ib)) if ia < ib => {
                    out.idx.push(ia);
                    out.vals.push(self.vals[a]);
                    a += 1;
                }
                (Some(_), Some(&ib)) => {
                    out.idx.push(ib);
                    out.vals.push(other.vals[b]);
                    b += 1;
                }
                (Some(&ia), None) => {
                    out.idx.push(ia);
                    out.vals.push(self.vals[a]);
                    a += 1;
                }
                (None, Some(&ib)) => {
                    out.idx.push(ib);
                    out.vals.push(other.vals[b]);
                    b += 1;
                }
                (None, None) => break,
            }
        }
        Ok(out)
    }

    /// Reduce all stored values to a scalar under a monoid.
    pub fn reduce<M: Monoid<T>>(&self, monoid: M) -> T {
        self.vals
            .iter()
            .fold(monoid.identity(), |acc, &v| monoid.apply(acc, v))
    }

    /// The `k` stored entries with the largest values, sorted descending by
    /// value (ties broken by index).  Convenience for "top talkers" analysis.
    pub fn top_k(&self, k: usize) -> Vec<(Index, T)> {
        let mut pairs: Vec<(Index, T)> = self.iter().collect();
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        pairs.truncate(k);
        pairs
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.idx.clear();
        self.vals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus};
    use crate::ops::monoid::{MaxMonoid, PlusMonoid};

    #[test]
    fn build_and_get() {
        let v = SparseVector::from_tuples(1 << 32, &[7, 3, 7], &[1u64, 2, 3], Plus).unwrap();
        assert_eq!(v.nvals(), 2);
        assert_eq!(v.get(3), Some(2));
        assert_eq!(v.get(7), Some(4));
        assert_eq!(v.get(8), None);
        assert_eq!(v.size(), 1 << 32);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(SparseVector::<u8>::try_new(0).is_err());
    }

    #[test]
    fn set_and_accum() {
        let mut v = SparseVector::<u64>::new(100);
        v.set(10, 5).unwrap();
        v.set(10, 7).unwrap();
        assert_eq!(v.get(10), Some(7));
        v.accum(10, 3, Plus).unwrap();
        assert_eq!(v.get(10), Some(10));
        v.accum(20, 1, Plus).unwrap();
        assert_eq!(v.nvals(), 2);
        assert!(v.set(100, 1).is_err());
        assert!(v.accum(200, 1, Plus).is_err());
    }

    #[test]
    fn ewise_add_union() {
        let a = SparseVector::from_tuples(10, &[1, 3], &[1u32, 3], Plus).unwrap();
        let b = SparseVector::from_tuples(10, &[3, 5], &[30u32, 50], Plus).unwrap();
        let c = a.ewise_add(&b, Plus).unwrap();
        assert_eq!(c.get(1), Some(1));
        assert_eq!(c.get(3), Some(33));
        assert_eq!(c.get(5), Some(50));
        assert_eq!(c.nvals(), 3);
        let d = a.ewise_add(&b, Max).unwrap();
        assert_eq!(d.get(3), Some(30));
    }

    #[test]
    fn ewise_add_size_mismatch() {
        let a = SparseVector::<u32>::new(10);
        let b = SparseVector::<u32>::new(11);
        assert!(a.ewise_add(&b, Plus).is_err());
    }

    #[test]
    fn reduce_monoids() {
        let v = SparseVector::from_tuples(100, &[1, 2, 3], &[5i64, -2, 10], Plus).unwrap();
        assert_eq!(v.reduce(PlusMonoid), 13);
        assert_eq!(v.reduce(MaxMonoid), 10);
        let empty = SparseVector::<i64>::new(10);
        assert_eq!(empty.reduce(PlusMonoid), 0);
    }

    #[test]
    fn top_k_orders_by_value() {
        let v = SparseVector::from_tuples(100, &[1, 2, 3, 4], &[5u64, 50, 10, 50], Plus).unwrap();
        let top = v.top_k(3);
        assert_eq!(top, vec![(2, 50), (4, 50), (3, 10)]);
        assert_eq!(v.top_k(0), vec![]);
        assert_eq!(v.top_k(100).len(), 4);
    }

    #[test]
    fn iter_sorted_and_clear() {
        let mut v = SparseVector::from_tuples(10, &[9, 0, 5], &[1u8, 2, 3], Plus).unwrap();
        let items: Vec<_> = v.iter().collect();
        assert_eq!(items, vec![(0, 2), (5, 3), (9, 1)]);
        v.clear();
        assert!(v.is_empty());
    }
}
