//! Graph algorithms expressed in the language of sparse linear algebra.
//!
//! These are the "various network statistics" a real streaming-analysis
//! process would compute on each traffic matrix as it is updated (paper,
//! §III), and they double as end-to-end exercises of the GraphBLAS kernels.
//!
//! Every algorithm runs over any [`MatrixReader`](crate::reader::MatrixReader):
//! pass `&mut` a flat [`Matrix`](crate::matrix::Matrix), a hierarchical or
//! sharded matrix, or any other reader — the pattern is pulled through the
//! reader's sorted entry cursor, so no materialised snapshot is needed.

pub mod centrality;
pub mod degree;
pub mod traversal;
pub mod triangles;

pub use centrality::{connected_components, pagerank};
pub use degree::{col_degree, degree_distribution, row_degree, DegreeDistribution};
pub use traversal::bfs_levels;
pub use triangles::triangle_count;
