//! Graph algorithms expressed in the language of sparse linear algebra.
//!
//! These are the "various network statistics" a real streaming-analysis
//! process would compute on each traffic matrix as it is updated (paper,
//! §III), and they double as end-to-end exercises of the GraphBLAS kernels.

pub mod centrality;
pub mod degree;
pub mod traversal;
pub mod triangles;

pub use centrality::{connected_components, pagerank};
pub use degree::{col_degree, degree_distribution, row_degree, DegreeDistribution};
pub use traversal::bfs_levels;
pub use triangles::triangle_count;
