//! Graph algorithms expressed in the language of sparse linear algebra.
//!
//! These are the "various network statistics" a real streaming-analysis
//! process would compute on each traffic matrix as it is updated (paper,
//! §III), and they double as end-to-end exercises of the GraphBLAS kernels.
//!
//! The primary entry points run over any
//! [`CursorReader`](crate::reader::CursorReader) — a flat
//! [`Matrix`](crate::matrix::Matrix), a hierarchical matrix or a snapshot —
//! driving the kernels directly off the reader's DCSR level slices, so no
//! materialised `Σ levels` or tuple round-trip is ever formed.  The
//! `*_tuples` fallbacks accept any
//! [`MatrixReader`](crate::reader::MatrixReader) (e.g. the DB-analogue
//! stores) by pulling the pattern through the sorted entry cursor and
//! rebuilding a flat matrix first.

pub mod centrality;
pub mod degree;
pub mod traversal;
pub mod triangles;

pub use centrality::{
    connected_components, connected_components_tuples, pagerank, pagerank_tuples,
};
pub use degree::{col_degree, degree_distribution, row_degree, DegreeDistribution};
pub use traversal::{bfs_levels, bfs_levels_tuples};
pub use triangles::{triangle_count, triangle_count_tuples};
