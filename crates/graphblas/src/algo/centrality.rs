//! Centrality measures: PageRank and connected components, expressed with
//! the GraphBLAS kernels.
//!
//! These round out the "various network statistics" computed on streaming
//! traffic matrices (paper §III) and exercise `mxv`/`vxm` and `ewise` paths
//! on hypersparse operands.  Both run over any [`MatrixReader`], pulling
//! the adjacency pattern through the reader's entry cursor.

use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::mxv::vxm;
use crate::ops::semiring::{MinFirst, PlusTimes};
use crate::reader::{read_tuples, MatrixReader};
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// PageRank over the directed graph whose adjacency pattern is `a`
/// (edge `i -> j` for every stored entry; weights ignored).
///
/// Returns the rank of every vertex that has at least one in- or out-edge.
/// `damping` is the usual 0.85; iteration stops after `max_iters` or when
/// the L1 change drops below `tol`.
pub fn pagerank<V, R>(a: &mut R, damping: f64, max_iters: usize, tol: f64) -> SparseVector<f64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    // Collect the pattern and the active vertex set (sources and
    // destinations) through the reader cursor.
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    let mut active: Vec<Index> = rows.iter().chain(cols.iter()).copied().collect();
    active.sort_unstable();
    active.dedup();
    let n = active.len();
    if n == 0 {
        return SparseVector::new(nrows);
    }

    // Column-stochastic transition: P(i, j) = 1 / outdeg(i) for each edge.
    // The reader contract delivers entries row-major sorted, so each row's
    // edges are one contiguous run — fill the reciprocal per run instead of
    // building and re-probing a per-edge degree map.
    let mut pvals = vec![0.0f64; rows.len()];
    let mut start = 0;
    while start < rows.len() {
        let mut end = start + 1;
        while end < rows.len() && rows[end] == rows[start] {
            end += 1;
        }
        let inv = 1.0 / (end - start) as f64;
        for slot in &mut pvals[start..end] {
            *slot = inv;
        }
        start = end;
    }
    let p = Matrix::from_tuples(nrows, ncols, &rows, &cols, &pvals, crate::ops::binary::Plus)
        .expect("transition matrix coordinates are in bounds");

    // Rank vector initialised uniformly over the active set.
    let mut rank = SparseVector::<f64>::new(nrows);
    for &v in &active {
        rank.set(v, 1.0 / n as f64).expect("active vertex in range");
    }
    let teleport = (1.0 - damping) / n as f64;

    for _ in 0..max_iters {
        let spread = vxm(&rank, &p, PlusTimes);
        let mut next = SparseVector::<f64>::new(nrows);
        let mut delta = 0.0;
        for &v in &active {
            let val = teleport + damping * spread.get(v).unwrap_or(0.0);
            delta += (val - rank.get(v).unwrap_or(0.0)).abs();
            next.set(v, val).expect("active vertex in range");
        }
        rank = next;
        if delta < tol {
            break;
        }
    }
    rank
}

/// Connected components of the *undirected* graph whose adjacency pattern is
/// `a` (treated symmetrically), via label propagation with the `(min,
/// second)` semiring.
///
/// Returns, for every vertex with at least one edge, the smallest vertex id
/// in its component.
pub fn connected_components<V, R>(a: &mut R) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    // Symmetric u64 pattern.
    let mut sr: Vec<Index> = Vec::with_capacity(rows.len() * 2);
    let mut sc: Vec<Index> = Vec::with_capacity(rows.len() * 2);
    for k in 0..rows.len() {
        sr.push(rows[k]);
        sc.push(cols[k]);
        sr.push(cols[k]);
        sc.push(rows[k]);
    }
    let ones = vec![1u64; sr.len()];
    let sym = Matrix::from_tuples(
        nrows,
        nrows.max(ncols),
        &sr,
        &sc,
        &ones,
        crate::ops::binary::Second,
    )
    .expect("pattern rebuild");

    let mut active: Vec<Index> = sr.clone();
    active.sort_unstable();
    active.dedup();

    // labels(v) = v initially.
    let mut labels = SparseVector::<u64>::new(sym.nrows());
    for &v in &active {
        labels.set(v, v).expect("vertex in range");
    }
    // Propagate the minimum label along edges until a fixed point.
    loop {
        let propagated = vxm(&labels, &sym, MinFirst);
        let mut changed = false;
        let mut next = labels.clone();
        for (v, incoming) in propagated.iter() {
            let current = labels.get(v).unwrap_or(u64::MAX);
            // MinSecond propagates neighbour labels; take the min of the
            // incoming label and the current one.
            if incoming < current {
                next.set(v, incoming).expect("vertex in range");
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn graph(nrows: u64, edges: &[(u64, u64)]) -> Matrix<u64> {
        let rows: Vec<u64> = edges.iter().map(|e| e.0).collect();
        let cols: Vec<u64> = edges.iter().map(|e| e.1).collect();
        let vals = vec![1u64; edges.len()];
        Matrix::from_tuples(nrows, nrows, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn pagerank_ranks_hub_highest() {
        // Star pointing at vertex 0: everyone links to 0.
        let mut g = graph(10, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let pr = pagerank(&mut g, 0.85, 50, 1e-9);
        let r0 = pr.get(0).unwrap();
        for v in 1..=4u64 {
            assert!(r0 > pr.get(v).unwrap(), "hub must out-rank leaf {v}");
        }
    }

    #[test]
    fn pagerank_sums_to_about_one() {
        let mut g = graph(8, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let pr = pagerank(&mut g, 0.85, 100, 1e-10);
        let total: f64 = pr.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 0.05, "total rank {total}");
    }

    #[test]
    fn pagerank_empty_graph() {
        let mut g = Matrix::<u64>::new(8, 8);
        assert!(pagerank(&mut g, 0.85, 10, 1e-6).is_empty());
    }

    #[test]
    fn pagerank_symmetric_cycle_is_uniform() {
        let mut g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&mut g, 0.85, 100, 1e-12);
        let vals: Vec<f64> = (0..4).map(|v| pr.get(v).unwrap()).collect();
        for w in vals.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn components_two_clusters() {
        let mut g = graph(1 << 32, &[(1, 2), (2, 3), (100, 101)]);
        let cc = connected_components(&mut g);
        assert_eq!(cc.get(1), Some(1));
        assert_eq!(cc.get(2), Some(1));
        assert_eq!(cc.get(3), Some(1));
        assert_eq!(cc.get(100), Some(100));
        assert_eq!(cc.get(101), Some(100));
        assert_eq!(cc.get(50), None);
    }

    #[test]
    fn components_chain_converges_to_smallest_id() {
        let mut g = graph(100, &[(9, 8), (8, 7), (7, 6), (6, 5)]);
        let cc = connected_components(&mut g);
        for v in 5..=9u64 {
            assert_eq!(cc.get(v), Some(5));
        }
    }

    #[test]
    fn components_hypersparse_ids() {
        let a = 1u64 << 33;
        let mut g = graph(1 << 40, &[(a, a + 7)]);
        let cc = connected_components(&mut g);
        assert_eq!(cc.get(a), Some(a));
        assert_eq!(cc.get(a + 7), Some(a));
    }
}
