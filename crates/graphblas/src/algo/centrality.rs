//! Centrality measures: PageRank and connected components, expressed with
//! the GraphBLAS kernels.
//!
//! These round out the "various network statistics" computed on streaming
//! traffic matrices (paper §III).  The primary entry points run over any
//! [`CursorReader`], driving the iteration directly off the reader's DCSR
//! level slices; the `*_tuples` fallbacks pull the pattern through the
//! plain entry cursor and rebuild a flat matrix first, which is what the
//! DB-analogue stores use.

use crate::cursor::LevelCursors;
use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::binary::{First, Plus};
use crate::ops::mxv::vxm;
use crate::ops::semiring::{MinFirst, PlusTimes};
use crate::reader::{read_tuples, CursorReader, MatrixReader};
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// PageRank over the directed graph whose adjacency pattern is `a`
/// (edge `i -> j` for every stored entry; weights ignored).
///
/// Runs over any [`CursorReader`].  Out-degrees are served straight from
/// the reader's row [`DegreeIndex`](crate::degree_index::DegreeIndex) when
/// it keeps one (`O(rows)` once instead of a counting sweep; a
/// `debug_assert` cross-checks the index against the sweep in debug
/// builds).  One cursor sweep folds the distinct adjacency pattern into a
/// position-ranked scratch (each destination as a `u32` slot into the
/// active set), so every iteration is a dense-array push of
/// `rank(i)/outdeg(i)` under `plus` — no per-iteration level lookups, no
/// scatter sorts, and the weighted transition matrix is never built.
///
/// Returns the rank of every vertex that has at least one in- or out-edge.
/// `damping` is the usual 0.85; iteration stops after `max_iters` or when
/// the L1 change drops below `tol`.
pub fn pagerank<V, R>(a: &mut R, damping: f64, max_iters: usize, tol: f64) -> SparseVector<f64>
where
    V: ScalarType,
    R: CursorReader<V> + ?Sized,
{
    let (nrows, ncols) = a.read_dims();
    let indexed = a.out_degrees();
    let need_sweep = indexed.is_none() || cfg!(debug_assertions);
    let mut rank = SparseVector::<f64>::new(nrows.max(ncols));
    a.with_level_dcsrs(&mut |lv| {
        // One sweep collects the source rows, their distinct out-neighbour
        // lists folded across levels (flattened CSR-style into `adj`), and
        // — when no index served them — the distinct out-degree per row.
        let mut sweep: Vec<(Index, u64)> = Vec::new();
        let mut srcs: Vec<Index> = Vec::new();
        let mut offsets: Vec<usize> = vec![0];
        let mut adj: Vec<Index> = Vec::new();
        let mut cur = LevelCursors::new(lv);
        while let Some(r) = cur.next_row() {
            srcs.push(r);
            cur.fold_row(First, &mut |c, _| adj.push(c));
            offsets.push(adj.len());
            if need_sweep {
                sweep.push((r, (offsets[srcs.len()] - offsets[srcs.len() - 1]) as u64));
            }
        }
        let mut active: Vec<Index> = srcs.clone();
        active.extend_from_slice(&adj);
        active.sort_unstable();
        active.dedup();
        let n = active.len();
        if n == 0 {
            return;
        }
        if let Some(ix) = &indexed {
            debug_assert_eq!(
                ix, &sweep,
                "DegreeIndex-served out-degrees must match the level sweep"
            );
        }
        let degrees = indexed.as_ref().unwrap_or(&sweep);

        // Rank every vertex once into its position in the sorted active
        // set, so the iterations below run on dense arrays.
        assert!(n <= u32::MAX as usize, "active set exceeds u32 positions");
        let pos = |v: Index| active.binary_search(&v).expect("vertex is active") as u32;
        let targets: Vec<u32> = adj.iter().map(|&c| pos(c)).collect();
        let src_pos: Vec<u32> = degrees.iter().map(|&(r, _)| pos(r)).collect();

        let teleport = (1.0 - damping) / n as f64;
        let mut cur_rank = vec![1.0 / n as f64; n];
        let mut spread = vec![0.0f64; n];
        for _ in 0..max_iters {
            spread.iter_mut().for_each(|s| *s = 0.0);
            for (k, &(r, d)) in degrees.iter().enumerate() {
                debug_assert_eq!(r, srcs[k], "degrees align with the sweep order");
                let contrib = cur_rank[src_pos[k] as usize] / d as f64;
                for &t in &targets[offsets[k]..offsets[k + 1]] {
                    spread[t as usize] += contrib;
                }
            }
            let mut delta = 0.0;
            for p in 0..n {
                let val = teleport + damping * spread[p];
                delta += (val - cur_rank[p]).abs();
                cur_rank[p] = val;
            }
            if delta < tol {
                break;
            }
        }
        for (p, &v) in active.iter().enumerate() {
            rank.set(v, cur_rank[p]).expect("active vertex in range");
        }
    });
    rank
}

/// [`pagerank`] over any [`MatrixReader`], the tuple-materialising
/// fallback: the pattern is pulled through the reader's entry cursor, the
/// column-stochastic transition matrix is built flat, and the iteration
/// runs as `vxm` over `(plus, times)`.  Kept for readers without level
/// access and as the oracle the equivalence tests compare against.
pub fn pagerank_tuples<V, R>(
    a: &mut R,
    damping: f64,
    max_iters: usize,
    tol: f64,
) -> SparseVector<f64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    // Collect the pattern and the active vertex set (sources and
    // destinations) through the reader cursor.
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    let mut active: Vec<Index> = rows.iter().chain(cols.iter()).copied().collect();
    active.sort_unstable();
    active.dedup();
    let n = active.len();
    if n == 0 {
        return SparseVector::new(nrows);
    }

    // Column-stochastic transition: P(i, j) = 1 / outdeg(i) for each edge.
    // The reader contract delivers entries row-major sorted, so each row's
    // edges are one contiguous run — fill the reciprocal per run instead of
    // building and re-probing a per-edge degree map.
    let mut pvals = vec![0.0f64; rows.len()];
    let mut start = 0;
    while start < rows.len() {
        let mut end = start + 1;
        while end < rows.len() && rows[end] == rows[start] {
            end += 1;
        }
        let inv = 1.0 / (end - start) as f64;
        for slot in &mut pvals[start..end] {
            *slot = inv;
        }
        start = end;
    }
    let p = Matrix::from_tuples(nrows, ncols, &rows, &cols, &pvals, Plus)
        .expect("transition matrix coordinates are in bounds");

    // Rank vector initialised uniformly over the active set.
    let mut rank = SparseVector::<f64>::new(nrows);
    for &v in &active {
        rank.set(v, 1.0 / n as f64).expect("active vertex in range");
    }
    let teleport = (1.0 - damping) / n as f64;

    for _ in 0..max_iters {
        let spread = vxm(&rank, &p, PlusTimes);
        let mut next = SparseVector::<f64>::new(nrows);
        let mut delta = 0.0;
        for &v in &active {
            let val = teleport + damping * spread.get(v).unwrap_or(0.0);
            delta += (val - rank.get(v).unwrap_or(0.0)).abs();
            next.set(v, val).expect("active vertex in range");
        }
        rank = next;
        if delta < tol {
            break;
        }
    }
    rank
}

/// Connected components of the *undirected* graph whose adjacency pattern is
/// `a` (treated symmetrically), via min-label propagation.
///
/// Runs over any [`CursorReader`]: each round sweeps the stored cells of
/// the level slices once, propagating the smaller endpoint label in *both*
/// directions — no symmetrised copy of the pattern is ever built, and
/// duplicate cells across levels are harmless under `min`.
///
/// Returns, for every vertex with at least one edge, the smallest vertex id
/// in its component.
pub fn connected_components<V, R>(a: &mut R) -> SparseVector<u64>
where
    V: ScalarType,
    R: CursorReader<V> + ?Sized,
{
    let (nrows, ncols) = a.read_dims();
    let mut out = SparseVector::<u64>::new(nrows.max(ncols));
    a.with_level_dcsrs(&mut |lv| {
        let mut active: Vec<Index> = Vec::new();
        for d in lv {
            let (row_ids, _, cols, _) = d.raw_parts();
            active.extend_from_slice(row_ids);
            active.extend_from_slice(cols);
        }
        active.sort_unstable();
        active.dedup();
        if active.is_empty() {
            return;
        }
        // labels[p] is the label of vertex active[p]; start from the id.
        let mut labels: Vec<u64> = active.clone();
        loop {
            let mut changed = false;
            let mut next = labels.clone();
            for d in lv {
                let (row_ids, row_ptr, cols, _) = d.raw_parts();
                for (s, &i) in row_ids.iter().enumerate() {
                    let pi = active.binary_search(&i).expect("endpoint is active");
                    let li = labels[pi];
                    for &j in &cols[row_ptr[s]..row_ptr[s + 1]] {
                        let pj = active.binary_search(&j).expect("endpoint is active");
                        let lj = labels[pj];
                        if lj < next[pi] {
                            next[pi] = lj;
                            changed = true;
                        }
                        if li < next[pj] {
                            next[pj] = li;
                            changed = true;
                        }
                    }
                }
            }
            labels = next;
            if !changed {
                break;
            }
        }
        for (p, &v) in active.iter().enumerate() {
            out.set(v, labels[p]).expect("vertex in range");
        }
    });
    out
}

/// [`connected_components`] over any [`MatrixReader`], the
/// tuple-materialising fallback: the pattern is pulled through the entry
/// cursor, symmetrised into a flat matrix, and labels propagate with `vxm`
/// over `(min, first)`.  Kept for readers without level access and as the
/// oracle the equivalence tests compare against.
pub fn connected_components_tuples<V, R>(a: &mut R) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    // Symmetric u64 pattern.
    let mut sr: Vec<Index> = Vec::with_capacity(rows.len() * 2);
    let mut sc: Vec<Index> = Vec::with_capacity(rows.len() * 2);
    for k in 0..rows.len() {
        sr.push(rows[k]);
        sc.push(cols[k]);
        sr.push(cols[k]);
        sc.push(rows[k]);
    }
    let ones = vec![1u64; sr.len()];
    let sym = Matrix::from_tuples(
        nrows,
        nrows.max(ncols),
        &sr,
        &sc,
        &ones,
        crate::ops::binary::Second,
    )
    .expect("pattern rebuild");

    let mut active: Vec<Index> = sr.clone();
    active.sort_unstable();
    active.dedup();

    // labels(v) = v initially.
    let mut labels = SparseVector::<u64>::new(sym.nrows());
    for &v in &active {
        labels.set(v, v).expect("vertex in range");
    }
    // Propagate the minimum label along edges until a fixed point.
    loop {
        let propagated = vxm(&labels, &sym, MinFirst);
        let mut changed = false;
        let mut next = labels.clone();
        for (v, incoming) in propagated.iter() {
            let current = labels.get(v).unwrap_or(u64::MAX);
            // MinSecond propagates neighbour labels; take the min of the
            // incoming label and the current one.
            if incoming < current {
                next.set(v, incoming).expect("vertex in range");
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(nrows: u64, edges: &[(u64, u64)]) -> Matrix<u64> {
        let rows: Vec<u64> = edges.iter().map(|e| e.0).collect();
        let cols: Vec<u64> = edges.iter().map(|e| e.1).collect();
        let vals = vec![1u64; edges.len()];
        Matrix::from_tuples(nrows, nrows, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn pagerank_ranks_hub_highest() {
        // Star pointing at vertex 0: everyone links to 0.
        let mut g = graph(10, &[(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let pr = pagerank(&mut g, 0.85, 50, 1e-9);
        let r0 = pr.get(0).unwrap();
        for v in 1..=4u64 {
            assert!(r0 > pr.get(v).unwrap(), "hub must out-rank leaf {v}");
        }
    }

    #[test]
    fn pagerank_sums_to_about_one() {
        let mut g = graph(8, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let pr = pagerank(&mut g, 0.85, 100, 1e-10);
        let total: f64 = pr.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 0.05, "total rank {total}");
    }

    #[test]
    fn pagerank_empty_graph() {
        let mut g = Matrix::<u64>::new(8, 8);
        assert!(pagerank(&mut g, 0.85, 10, 1e-6).is_empty());
    }

    #[test]
    fn pagerank_symmetric_cycle_is_uniform() {
        let mut g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&mut g, 0.85, 100, 1e-12);
        let vals: Vec<f64> = (0..4).map(|v| pr.get(v).unwrap()).collect();
        for w in vals.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn pagerank_agrees_with_tuples_fallback() {
        let mut g = graph(
            32,
            &[(0, 1), (1, 2), (2, 0), (3, 0), (3, 4), (4, 3), (9, 2)],
        );
        let fast = pagerank(&mut g, 0.85, 60, 1e-12);
        let slow = pagerank_tuples(&mut g, 0.85, 60, 1e-12);
        assert_eq!(fast.nvals(), slow.nvals());
        for (v, r) in fast.iter() {
            let s = slow.get(v).expect("same active set");
            assert!((r - s).abs() < 1e-9, "v={v}: {r} vs {s}");
        }
    }

    #[test]
    fn components_two_clusters() {
        let mut g = graph(1 << 32, &[(1, 2), (2, 3), (100, 101)]);
        let cc = connected_components(&mut g);
        assert_eq!(cc.get(1), Some(1));
        assert_eq!(cc.get(2), Some(1));
        assert_eq!(cc.get(3), Some(1));
        assert_eq!(cc.get(100), Some(100));
        assert_eq!(cc.get(101), Some(100));
        assert_eq!(cc.get(50), None);
    }

    #[test]
    fn components_chain_converges_to_smallest_id() {
        let mut g = graph(100, &[(9, 8), (8, 7), (7, 6), (6, 5)]);
        let cc = connected_components(&mut g);
        for v in 5..=9u64 {
            assert_eq!(cc.get(v), Some(5));
        }
    }

    #[test]
    fn components_hypersparse_ids() {
        let a = 1u64 << 33;
        let mut g = graph(1 << 40, &[(a, a + 7)]);
        let cc = connected_components(&mut g);
        assert_eq!(cc.get(a), Some(a));
        assert_eq!(cc.get(a + 7), Some(a));
    }

    #[test]
    fn components_agree_with_tuples_fallback() {
        let mut g = graph(64, &[(1, 2), (2, 3), (10, 11), (11, 1), (40, 41)]);
        let fast = connected_components(&mut g);
        let slow = connected_components_tuples(&mut g);
        assert_eq!(
            fast.iter().collect::<Vec<_>>(),
            slow.iter().collect::<Vec<_>>()
        );
    }
}
