//! Breadth-first search expressed as repeated `vxm` over a boolean-style
//! semiring.

use crate::index::Index;
use crate::matrix::Matrix;
use crate::ops::mxv::vxm;
use crate::ops::semiring::MinSecond;
use crate::reader::{read_tuples, MatrixReader};
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// Level-synchronous BFS from `source` on the directed graph whose adjacency
/// pattern is `a` (edge `i -> j` when `a(i, j)` is stored).
///
/// Runs over any [`MatrixReader`] — the adjacency pattern is pulled through
/// the reader's entry cursor, so hierarchical or sharded matrices are
/// traversed without materialisation.
///
/// Returns a sparse vector whose entry `v(j)` is the BFS level of vertex `j`
/// (source has level 1), containing only the reachable vertices.
pub fn bfs_levels<V, R>(a: &mut R, source: Index) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    // Work on the pattern as u64 so levels can be carried through the semiring.
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    let ones = vec![1u64; rows.len()];
    let pattern = Matrix::from_tuples(
        nrows,
        ncols,
        &rows,
        &cols,
        &ones,
        crate::ops::binary::Second,
    )
    .expect("pattern rebuild");

    let mut levels = SparseVector::<u64>::new(nrows);
    if source >= nrows {
        return levels;
    }
    levels.set(source, 1).expect("source in range");
    let mut frontier = SparseVector::<u64>::new(nrows);
    frontier.set(source, 1).expect("source in range");

    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        // next = frontier * pattern (min-second keeps any reaching parent)
        let reached = vxm(&frontier, &pattern, MinSecond);
        let mut next = SparseVector::<u64>::new(nrows);
        for (j, _) in reached.iter() {
            if levels.get(j).is_none() {
                levels.set(j, level).expect("in range");
                next.set(j, 1).expect("in range");
            }
        }
        frontier = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn path_graph(n: u64) -> Matrix<u64> {
        // 0 -> 1 -> 2 -> ... -> n-1
        let rows: Vec<u64> = (0..n - 1).collect();
        let cols: Vec<u64> = (1..n).collect();
        let vals = vec![1u64; (n - 1) as usize];
        Matrix::from_tuples(n, n, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let mut g = path_graph(5);
        let levels = bfs_levels(&mut g, 0);
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(4), Some(5));
        assert_eq!(levels.nvals(), 5);
    }

    #[test]
    fn bfs_unreachable_vertices_absent() {
        let mut g = path_graph(5);
        let levels = bfs_levels(&mut g, 3);
        assert_eq!(levels.get(3), Some(1));
        assert_eq!(levels.get(4), Some(2));
        assert_eq!(levels.get(0), None);
        assert_eq!(levels.nvals(), 2);
    }

    #[test]
    fn bfs_on_branching_graph() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (diamond)
        let mut g = Matrix::from_tuples(4, 4, &[0, 0, 1, 2], &[1, 2, 3, 3], &[1u64, 1, 1, 1], Plus)
            .unwrap();
        let levels = bfs_levels(&mut g, 0);
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(2), Some(2));
        assert_eq!(levels.get(3), Some(3));
    }

    #[test]
    fn bfs_source_out_of_range() {
        let mut g = path_graph(3);
        let levels = bfs_levels(&mut g, 99);
        assert!(levels.is_empty());
    }

    #[test]
    fn bfs_isolated_source() {
        let mut g = Matrix::<u64>::new(8, 8);
        let levels = bfs_levels(&mut g, 2);
        assert_eq!(levels.nvals(), 1);
        assert_eq!(levels.get(2), Some(1));
    }
}
