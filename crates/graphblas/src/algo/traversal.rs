//! Breadth-first search expressed as a masked frontier push over the
//! adjacency pattern.

use crate::index::Index;
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops::binary::Min;
use crate::ops::mxv::vxm;
use crate::ops::reader_mx::vxm_pattern_levels;
use crate::ops::semiring::MinSecond;
use crate::ops::spa::SpaScratch;
use crate::reader::{read_tuples, CursorReader, MatrixReader};
use crate::types::ScalarType;
use crate::vector::SparseVector;

/// Level-synchronous BFS from `source` on the directed graph whose adjacency
/// pattern is `a` (edge `i -> j` when `a(i, j)` is stored).
///
/// Runs over any [`CursorReader`]: each wave is one masked pattern push
/// ([`vxm_pattern_levels`]) driven directly off the reader's DCSR level
/// slices — the complement of the visited set masks columns *before* any
/// accumulation, so already-discovered vertices cost one membership check
/// instead of a product, and the adjacency is never rebuilt as a flat
/// matrix.  Readers without level access use [`bfs_levels_tuples`].
///
/// Returns a sparse vector whose entry `v(j)` is the BFS level of vertex `j`
/// (source has level 1), containing only the reachable vertices.
pub fn bfs_levels<V, R>(a: &mut R, source: Index) -> SparseVector<u64>
where
    V: ScalarType,
    R: CursorReader<V> + ?Sized,
{
    let (nrows, ncols) = a.read_dims();
    let mut levels = SparseVector::<u64>::new(nrows.max(ncols));
    if source >= nrows {
        return levels;
    }
    levels.set(source, 1).expect("source in range");
    a.with_level_dcsrs(&mut |lv| {
        let mut spa = SpaScratch::<u64>::new();
        let mut frontier: Vec<(Index, u64)> = vec![(source, 1)];
        let mut reached: Vec<(Index, u64)> = Vec::new();
        let mut level = 1u64;
        while !frontier.is_empty() {
            level += 1;
            {
                // Mask = complement of the visited set (the level vector's
                // pattern *is* the visited set), applied before the push.
                let unvisited = VectorMask::complement(&levels);
                vxm_pattern_levels(&frontier, lv, Min, Some(&unvisited), &mut spa, &mut reached);
            }
            frontier.clear();
            for &(j, _) in &reached {
                levels.set(j, level).expect("in range");
                frontier.push((j, 1));
            }
        }
    });
    levels
}

/// [`bfs_levels`] over any [`MatrixReader`], the tuple-materialising
/// fallback: the pattern is pulled through the reader's entry cursor and
/// rebuilt flat, then traversed with repeated `vxm` over `(min, second)`.
/// Kept for readers without level access and as the oracle the equivalence
/// tests compare against.
pub fn bfs_levels_tuples<V, R>(a: &mut R, source: Index) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    // Work on the pattern as u64 so levels can be carried through the semiring.
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    let ones = vec![1u64; rows.len()];
    let pattern = Matrix::from_tuples(
        nrows,
        ncols,
        &rows,
        &cols,
        &ones,
        crate::ops::binary::Second,
    )
    .expect("pattern rebuild");

    let mut levels = SparseVector::<u64>::new(nrows);
    if source >= nrows {
        return levels;
    }
    levels.set(source, 1).expect("source in range");
    let mut frontier = SparseVector::<u64>::new(nrows);
    frontier.set(source, 1).expect("source in range");

    let mut level = 1u64;
    while !frontier.is_empty() {
        level += 1;
        // next = frontier * pattern (min-second keeps any reaching parent)
        let reached = vxm(&frontier, &pattern, MinSecond);
        let mut next = SparseVector::<u64>::new(nrows);
        for (j, _) in reached.iter() {
            if levels.get(j).is_none() {
                levels.set(j, level).expect("in range");
                next.set(j, 1).expect("in range");
            }
        }
        frontier = next;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn path_graph(n: u64) -> Matrix<u64> {
        // 0 -> 1 -> 2 -> ... -> n-1
        let rows: Vec<u64> = (0..n - 1).collect();
        let cols: Vec<u64> = (1..n).collect();
        let vals = vec![1u64; (n - 1) as usize];
        Matrix::from_tuples(n, n, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let mut g = path_graph(5);
        let levels = bfs_levels(&mut g, 0);
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(4), Some(5));
        assert_eq!(levels.nvals(), 5);
    }

    #[test]
    fn bfs_unreachable_vertices_absent() {
        let mut g = path_graph(5);
        let levels = bfs_levels(&mut g, 3);
        assert_eq!(levels.get(3), Some(1));
        assert_eq!(levels.get(4), Some(2));
        assert_eq!(levels.get(0), None);
        assert_eq!(levels.nvals(), 2);
    }

    #[test]
    fn bfs_on_branching_graph() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 (diamond)
        let mut g = Matrix::from_tuples(4, 4, &[0, 0, 1, 2], &[1, 2, 3, 3], &[1u64, 1, 1, 1], Plus)
            .unwrap();
        let levels = bfs_levels(&mut g, 0);
        assert_eq!(levels.get(0), Some(1));
        assert_eq!(levels.get(1), Some(2));
        assert_eq!(levels.get(2), Some(2));
        assert_eq!(levels.get(3), Some(3));
    }

    #[test]
    fn bfs_source_out_of_range() {
        let mut g = path_graph(3);
        let levels = bfs_levels(&mut g, 99);
        assert!(levels.is_empty());
    }

    #[test]
    fn bfs_isolated_source() {
        let mut g = Matrix::<u64>::new(8, 8);
        let levels = bfs_levels(&mut g, 2);
        assert_eq!(levels.nvals(), 1);
        assert_eq!(levels.get(2), Some(1));
    }

    #[test]
    fn cursor_and_tuples_paths_agree() {
        // Diamond plus a back edge and a detached 2-cycle.
        let mut g = Matrix::from_tuples(
            16,
            16,
            &[0, 0, 1, 2, 3, 5, 9],
            &[1, 2, 3, 3, 0, 9, 5],
            &[1u64; 7],
            Plus,
        )
        .unwrap();
        for src in [0u64, 3, 5, 7] {
            let fast = bfs_levels(&mut g, src);
            let slow = bfs_levels_tuples(&mut g, src);
            assert_eq!(
                fast.iter().collect::<Vec<_>>(),
                slow.iter().collect::<Vec<_>>(),
                "src={src}"
            );
        }
    }
}
