//! Degree statistics — out-degree, in-degree, degree distribution.
//!
//! All three run over any [`MatrixReader`], so they answer directly from a
//! hierarchical matrix's merged level cursors (or a sharded engine's worker
//! pool) — no materialised snapshot required.

use crate::index::Index;
use crate::reader::MatrixReader;
use crate::types::ScalarType;
use crate::vector::SparseVector;
use std::collections::BTreeMap;

/// Out-degree of every non-empty row: the number of stored entries per row
/// (pattern degree, ignoring weights).
pub fn row_degree<V, R>(a: &mut R) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    let mut v = SparseVector::new(a.read_dims().0);
    // Entries arrive row-major sorted: count run lengths and append each
    // finished run (appends at the tail, so building the vector is linear).
    let mut run: Option<(Index, u64)> = None;
    a.read_entries(&mut |r, _, _| match &mut run {
        Some((cr, n)) if *cr == r => *n += 1,
        _ => {
            if let Some((cr, n)) = run.take() {
                v.set(cr, n).expect("row id within reader dims");
            }
            run = Some((r, 1));
        }
    });
    if let Some((cr, n)) = run {
        v.set(cr, n).expect("row id within reader dims");
    }
    v
}

/// In-degree of every non-empty column.
///
/// Served through [`MatrixReader::read_in_top_k`] with `k = nnz` (an upper
/// bound on the number of distinct columns), so twin/index-backed readers
/// answer in O(columns log columns) off their column structures instead of
/// sweeping every stored entry.
pub fn col_degree<V, R>(a: &mut R) -> SparseVector<u64>
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    let bound = a.read_nnz();
    let mut degs = a.read_in_top_k(bound);
    // Ranked by degree; re-sort by column id so the vector builds with
    // ascending appends (linear) like the row-side mirror.
    degs.sort_unstable_by_key(|&(c, _)| c);
    let mut v = SparseVector::new(a.read_dims().1);
    for (c, n) in degs {
        v.set(c, n as u64).expect("col id within reader dims");
    }
    v
}

/// Histogram of a degree vector: `count[d]` = number of vertices with degree `d`.
///
/// For the power-law workloads of the paper the histogram should follow
/// `count[d] ∝ d^-α`; the workload-generator tests assert exactly that
/// shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeDistribution {
    /// Map from degree to the number of vertices having that degree.
    pub counts: BTreeMap<u64, u64>,
}

impl DegreeDistribution {
    /// Total number of vertices counted.
    pub fn total_vertices(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Maximum degree observed.
    pub fn max_degree(&self) -> u64 {
        self.counts.keys().next_back().copied().unwrap_or(0)
    }

    /// Estimate the power-law exponent `alpha` by a least-squares fit of
    /// `log(count)` against `log(degree)` (degrees with non-zero counts only).
    ///
    /// Returns `None` when fewer than two distinct degrees are present.
    pub fn powerlaw_exponent(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .counts
            .iter()
            .filter(|(&d, &c)| d > 0 && c > 0)
            .map(|(&d, &c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < f64::EPSILON {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(-slope)
    }
}

/// Compute the **out**-degree (row-pattern) distribution of a matrix.
///
/// Served through [`MatrixReader::read_degree_histogram`], so index-backed
/// readers (the hierarchical systems) answer in O(distinct degrees) rather
/// than sweeping every entry.  This counts *rows*; the column mirror is
/// [`in_degree_distribution`] — since the column read path landed, both
/// directions are index-served symmetrically (out-degree off the row
/// [`DegreeIndex`], in-degree off the column twin/index).
///
/// [`DegreeIndex`]: crate::degree_index::DegreeIndex
pub fn degree_distribution<V, R>(a: &mut R) -> DegreeDistribution
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    DegreeDistribution {
        counts: a.read_degree_histogram(),
    }
}

/// Compute the **in**-degree (column-pattern) distribution of a matrix —
/// the background model for *destination*-centric telemetry (victim
/// profiles) the way [`degree_distribution`] models sources.
///
/// Served through [`MatrixReader::read_in_degree_histogram`]: O(distinct
/// degrees) off a column index, one O(k) twin lookup otherwise — never the
/// old full-entry sweep.
pub fn in_degree_distribution<V, R>(a: &mut R) -> DegreeDistribution
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    DegreeDistribution {
        counts: a.read_in_degree_histogram(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::ops::binary::Plus;

    fn star_graph(center: u64, leaves: u64) -> Matrix<u64> {
        // center -> each leaf
        let rows: Vec<u64> = vec![center; leaves as usize];
        let cols: Vec<u64> = (0..leaves).map(|i| i + 1 + center).collect();
        let vals = vec![1u64; leaves as usize];
        Matrix::from_tuples(1 << 32, 1 << 32, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn row_and_col_degrees() {
        let mut g = star_graph(5, 4);
        let out = row_degree(&mut g);
        assert_eq!(out.get(5), Some(4));
        assert_eq!(out.nvals(), 1);
        let inn = col_degree(&mut g);
        assert_eq!(inn.nvals(), 4);
        assert_eq!(inn.get(6), Some(1));
    }

    #[test]
    fn degree_ignores_weights() {
        let mut g = Matrix::from_tuples(10, 10, &[1, 1], &[2, 3], &[100u64, 200], Plus).unwrap();
        assert_eq!(row_degree(&mut g).get(1), Some(2));
    }

    #[test]
    fn degrees_include_pending_tuples() {
        let mut g = Matrix::<u64>::new(100, 100);
        g.accum_tuples(&[3, 3, 3], &[1, 2, 1], &[1, 1, 1]).unwrap();
        // Pending only; duplicates on (3, 1) must collapse in the pattern.
        assert_eq!(row_degree(&mut g).get(3), Some(2));
    }

    #[test]
    fn in_degree_distribution_mirrors_transpose() {
        let mut g = star_graph(5, 4);
        let dist = in_degree_distribution(&mut g);
        // Four leaves, each with in-degree 1; the hub has none.
        assert_eq!(dist.counts.get(&1), Some(&4));
        assert_eq!(dist.total_vertices(), 4);
        assert_eq!(dist.max_degree(), 1);
    }

    #[test]
    fn distribution_counts() {
        let mut g = star_graph(0, 5);
        let dist = degree_distribution(&mut g);
        assert_eq!(dist.counts.get(&5), Some(&1));
        assert_eq!(dist.total_vertices(), 1);
        assert_eq!(dist.max_degree(), 5);
    }

    #[test]
    fn powerlaw_exponent_of_exact_powerlaw() {
        // Construct counts[d] = round(1000 * d^-2): slope should recover ~2.
        let mut counts = BTreeMap::new();
        for d in 1u64..=32 {
            let c = (1000.0 * (d as f64).powf(-2.0)).round() as u64;
            if c > 0 {
                counts.insert(d, c);
            }
        }
        let dist = DegreeDistribution { counts };
        let alpha = dist.powerlaw_exponent().unwrap();
        assert!((alpha - 2.0).abs() < 0.15, "alpha = {alpha}");
    }

    #[test]
    fn exponent_none_for_degenerate_distributions() {
        assert!(DegreeDistribution::default().powerlaw_exponent().is_none());
        let mut counts = BTreeMap::new();
        counts.insert(3u64, 10u64);
        assert!(DegreeDistribution { counts }.powerlaw_exponent().is_none());
    }

    #[test]
    fn empty_matrix_distribution() {
        let mut g = Matrix::<u64>::new(16, 16);
        let dist = degree_distribution(&mut g);
        assert_eq!(dist.total_vertices(), 0);
        assert_eq!(dist.max_degree(), 0);
    }
}
