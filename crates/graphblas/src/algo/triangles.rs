//! Triangle counting via the Burkhardt / Cohen masked-multiply formulation
//! (`ntri = sum(sum((A*A) .* A)) / 6` for a symmetric adjacency pattern).

use crate::matrix::Matrix;
use crate::ops::binary::Times;
use crate::ops::ewise_mult::ewise_mult;
use crate::ops::monoid::PlusMonoid;
use crate::ops::mxm::mxm;
use crate::ops::reader_mx::triangle_count_levels;
use crate::ops::reduce::reduce_scalar;
use crate::ops::semiring::PlusTimes;
use crate::reader::{read_tuples, CursorReader, MatrixReader};
use crate::types::ScalarType;

/// Count triangles in an undirected graph whose *symmetric* adjacency
/// pattern is stored in `a` (both `(i,j)` and `(j,i)` present, no
/// self-loops).  Weights are ignored.
///
/// Runs over any [`CursorReader`]: the masked multiply is driven directly
/// off the reader's DCSR level slices ([`triangle_count_levels`]), so the
/// `A ⊕.⊗ A` intermediate is never formed and a hierarchical or snapshot
/// reader is consumed without materialising `Σ levels` or round-tripping
/// the pattern through tuples.  For readers that only implement the plain
/// entry cursor (e.g. the DB-analogue stores), use
/// [`triangle_count_tuples`].
pub fn triangle_count<V, R>(a: &mut R) -> u64
where
    V: ScalarType,
    R: CursorReader<V> + ?Sized,
{
    let mut hits = 0u64;
    a.with_level_dcsrs(&mut |levels| {
        hits = triangle_count_levels(levels);
    });
    hits / 6
}

/// [`triangle_count`] over any [`MatrixReader`], the tuple-materialising
/// fallback: the pattern is pulled through the reader's sorted entry
/// cursor, rebuilt as a flat ones matrix, and counted with the explicit
/// `sum((A*A) .* A) / 6` pipeline.  Kept for readers without level access
/// and as the oracle the equivalence tests compare against.
pub fn triangle_count_tuples<V, R>(a: &mut R) -> u64
where
    V: ScalarType,
    R: MatrixReader<V> + ?Sized,
{
    // Work on a u64 pattern so path counts cannot overflow small types.
    // The reader cursor delivers duplicates already combined; every value
    // is rebuilt as literal 1 here (`Second` over a ones vector), so the
    // pattern needs no extra `apply(One)` normalisation pass.
    let (rows, cols, _) = read_tuples(a);
    let (nrows, ncols) = a.read_dims();
    let ones = vec![1u64; rows.len()];
    let pattern = Matrix::from_tuples(
        nrows,
        ncols,
        &rows,
        &cols,
        &ones,
        crate::ops::binary::Second,
    )
    .expect("pattern rebuild");

    let paths2 = mxm(&pattern, &pattern, PlusTimes);
    let closed = ewise_mult(&paths2, &pattern, Times);
    let total = reduce_scalar(&closed, PlusMonoid);
    total / 6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::Plus;

    fn symmetric(edges: &[(u64, u64)], n: u64) -> Matrix<u64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for &(a, b) in edges {
            rows.push(a);
            cols.push(b);
            rows.push(b);
            cols.push(a);
        }
        let vals = vec![1u64; rows.len()];
        Matrix::from_tuples(n, n, &rows, &cols, &vals, Plus).unwrap()
    }

    #[test]
    fn single_triangle() {
        let mut g = symmetric(&[(0, 1), (1, 2), (0, 2)], 4);
        assert_eq!(triangle_count(&mut g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let mut g = symmetric(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(triangle_count(&mut g), 0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut g = symmetric(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(triangle_count(&mut g), 4);
    }

    #[test]
    fn weights_are_ignored() {
        let mut g = Matrix::from_tuples(
            4,
            4,
            &[0, 1, 1, 2, 0, 2],
            &[1, 0, 2, 1, 2, 0],
            &[9u64, 9, 9, 9, 9, 9],
            Plus,
        )
        .unwrap();
        assert_eq!(triangle_count(&mut g), 1);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(triangle_count(&mut Matrix::<u64>::new(8, 8)), 0);
    }

    #[test]
    fn hypersparse_triangle() {
        let base = 1u64 << 33;
        let mut g = symmetric(
            &[(base, base + 1), (base + 1, base + 2), (base, base + 2)],
            1 << 40,
        );
        assert_eq!(triangle_count(&mut g), 1);
    }

    #[test]
    fn cursor_and_tuples_paths_agree() {
        let mut g = symmetric(
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 7),
                (7, 9),
            ],
            16,
        );
        assert_eq!(triangle_count(&mut g), triangle_count_tuples(&mut g));
    }
}
