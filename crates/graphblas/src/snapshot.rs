//! Consistent point-in-time read snapshots of a streaming matrix.
//!
//! A [`MatrixSnapshot`] is the answer to the read path's `&mut self`
//! exclusivity: every [`MatrixReader`] method may settle or drain before
//! answering, so a long full-matrix sweep holds the matrix (or a shard
//! worker's whole channel) for its entire duration.  A snapshot instead
//! captures, in O(levels):
//!
//! * **Arc'd settled levels** — shared handles to the levels' compressed
//!   structures ([`Matrix::settled_arc`]); the owning matrix keeps
//!   cascading and settling, copy-on-writing its own copies, while the
//!   snapshot keeps reading the captured ones;
//! * an optional **pending-tail copy** — pending tuples captured through
//!   `&self` are settled into one private tail level; and
//! * an optional **degree-index view** — the Arc-shared row stats of the
//!   source's [`DegreeIndex`], so `top_k`/`nnz`/degree answers stay
//!   O(k)/O(1) off the live path too.
//!
//! The snapshot implements [`MatrixReader`] itself, so every generic
//! analytic (the `algo` module, the mixed-workload harness) runs against
//! it unchanged — the "analytics while ingest" overlap of the roadmap:
//! take a snapshot at a drain barrier, answer the sweep from it, and let
//! the ingest channel keep draining underneath.
//!
//! [`Matrix`]: crate::matrix::Matrix

use crate::cursor::{
    for_each_merged, merged_nnz, merged_point, merged_row_degree, merged_row_into,
    merged_row_range, merged_row_reduce, merged_top_k_with, TopKScratch,
};
use crate::degree_index::DegreeIndexView;
use crate::formats::dcsr::Dcsr;
use crate::index::Index;
use crate::ops::binary::Plus;
use crate::reader::MatrixReader;
use crate::types::ScalarType;
use std::sync::Arc;

/// A point-in-time, independently owned view of a matrix: Arc'd settled
/// levels + optional pending tail + optional degree-index view.  See the
/// [module documentation](self).
#[derive(Debug, Clone)]
pub struct MatrixSnapshot<V> {
    name: String,
    nrows: Index,
    ncols: Index,
    levels: Vec<Arc<Dcsr<V>>>,
    /// Pending tuples captured un-settled, compressed into one extra level.
    tail: Option<Dcsr<V>>,
    /// Present when the source settled before capturing (the tail is empty
    /// then) — serves the O(1)/O(k) degree-centric answers.
    index: Option<DegreeIndexView<V>>,
    /// Arc-shared *column* stats (in-degree index) captured from sources
    /// that maintain one; same tail rule as `index`.
    col_index: Option<DegreeIndexView<V>>,
    /// Column twin built on the first column-extract query: the whole
    /// captured content (levels + tail) merged and transposed once, then
    /// every column read is O(k).  Lazy like the source matrices' twins.
    col_shadow: Option<Arc<Dcsr<V>>>,
    topk_scratch: TopKScratch,
}

impl<V: ScalarType> MatrixSnapshot<V> {
    /// Assemble a snapshot.  `tail_tuples` are pending tuples not yet
    /// settled at capture (any order, duplicates allowed — they compress
    /// under `+` here); when a tail exists the degree-centric queries fall
    /// back to cursor sweeps, so sources that can settle first should
    /// (then the tail is empty and `index` applies).
    pub fn new(
        name: impl Into<String>,
        nrows: Index,
        ncols: Index,
        levels: Vec<Arc<Dcsr<V>>>,
        tail_tuples: (&[Index], &[Index], &[V]),
        index: Option<DegreeIndexView<V>>,
    ) -> Self {
        let (tr, tc, tv) = tail_tuples;
        let tail = if tr.is_empty() {
            None
        } else {
            Some(
                Dcsr::from_tuples(nrows, ncols, tr, tc, tv, Plus)
                    .expect("snapshot tail tuples are within bounds"),
            )
        };
        Self {
            name: name.into(),
            nrows,
            ncols,
            levels,
            index: if tail.is_none() { index } else { None },
            col_index: None,
            col_shadow: None,
            tail,
            topk_scratch: TopKScratch::default(),
        }
    }

    /// Attach an Arc-shared column-stats view captured from the source's
    /// column [`DegreeIndex`](crate::degree_index::DegreeIndex), serving
    /// O(1) in-degree / O(k) in-degree-top-k straight off the snapshot.
    /// Dropped when a pending tail was captured — the same rule as the row
    /// index (the view cannot cover un-settled tuples).
    pub fn with_col_index(mut self, col_index: Option<DegreeIndexView<V>>) -> Self {
        self.col_index = if self.tail.is_none() { col_index } else { None };
        self
    }

    /// The captured level structures (tail included), lowest first — for
    /// engines that k-way merge several snapshots (e.g. per-shard
    /// snapshots whose rows are disjoint).
    pub fn level_dcsrs(&self) -> Vec<&Dcsr<V>> {
        self.levels
            .iter()
            .map(|a| a.as_ref())
            .chain(self.tail.as_ref())
            .collect()
    }

    /// True when the degree-index view serves this snapshot's degree
    /// answers (no pending tail was captured).
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// True when a column-stats view serves the in-degree answers.
    pub fn has_col_index(&self) -> bool {
        self.col_index.is_some()
    }

    /// The captured content transposed into one column-major structure,
    /// built on first use and cached (cheap Arc clone afterwards).
    fn col_shadow(&mut self) -> Arc<Dcsr<V>> {
        if self.col_shadow.is_none() {
            let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
            for_each_merged(&self.level_dcsrs(), Plus, &mut |r, c, v| {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            });
            let t = Dcsr::from_tuples(self.ncols, self.nrows, &cols, &rows, &vals, Plus)
                .expect("transposed snapshot tuples stay within the swapped dims");
            self.col_shadow = Some(Arc::new(t));
        }
        Arc::clone(self.col_shadow.as_ref().expect("just built"))
    }
}

/// Snapshot queries run over the captured levels only — by construction
/// nothing here ever settles, drains or otherwise disturbs the source.
impl<V: ScalarType> MatrixReader<V> for MatrixSnapshot<V> {
    fn reader_name(&self) -> &str {
        &self.name
    }

    fn read_dims(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    fn read_nnz(&mut self) -> usize {
        match &self.index {
            Some(ix) => ix.nnz(),
            None => merged_nnz(&self.level_dcsrs()),
        }
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<V> {
        merged_point(&self.level_dcsrs(), row, col, Plus)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, V)>) {
        merged_row_into(&self.level_dcsrs(), row, Plus, out);
    }

    fn read_row_degree(&mut self, row: Index) -> usize {
        match &self.index {
            Some(ix) => ix.row_degree(row),
            None => merged_row_degree(&self.level_dcsrs(), row),
        }
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<V> {
        match &self.index {
            Some(ix) => ix.row_weight(row),
            None => merged_row_reduce(&self.level_dcsrs(), row, Plus),
        }
    }

    fn read_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        match &mut self.index {
            Some(ix) => ix.top_k(k),
            None => {
                let levels: Vec<&Dcsr<V>> = self
                    .levels
                    .iter()
                    .map(|a| a.as_ref())
                    .chain(self.tail.as_ref())
                    .collect();
                merged_top_k_with(&levels, k, &mut self.topk_scratch)
            }
        }
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, V)) {
        for_each_merged(&self.level_dcsrs(), Plus, f);
    }

    fn read_row_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, V)) {
        merged_row_range(&self.level_dcsrs(), lo, hi, Plus, f);
    }

    fn read_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        match &mut self.index {
            Some(ix) => ix.degree_histogram(),
            None => crate::cursor::merged_degree_histogram(&self.level_dcsrs()),
        }
    }

    fn read_col(&mut self, col: Index, out: &mut Vec<(Index, V)>) {
        let shadow = self.col_shadow();
        out.clear();
        if let Some((rows, vals)) = shadow.row(col) {
            out.extend(rows.iter().copied().zip(vals.iter().copied()));
        }
    }

    fn read_col_degree(&mut self, col: Index) -> usize {
        if let Some(ix) = &self.col_index {
            return ix.row_degree(col);
        }
        self.col_shadow().row(col).map_or(0, |(rows, _)| rows.len())
    }

    fn read_col_reduce(&mut self, col: Index) -> Option<V> {
        if let Some(ix) = &self.col_index {
            return ix.row_weight(col);
        }
        let shadow = self.col_shadow();
        merged_row_reduce(&[&*shadow], col, Plus)
    }

    fn read_in_top_k(&mut self, k: usize) -> Vec<(Index, usize)> {
        if let Some(ix) = &mut self.col_index {
            return ix.top_k(k);
        }
        let shadow = self.col_shadow();
        merged_top_k_with(&[&*shadow], k, &mut self.topk_scratch)
    }

    fn read_in_degree_histogram(&mut self) -> std::collections::BTreeMap<u64, u64> {
        if let Some(ix) = &mut self.col_index {
            return ix.degree_histogram();
        }
        let shadow = self.col_shadow();
        crate::cursor::merged_degree_histogram(&[&*shadow])
    }

    fn read_col_range(&mut self, lo: Index, hi: Index, f: &mut dyn FnMut(Index, Index, V)) {
        let shadow = self.col_shadow();
        merged_row_range(&[&*shadow], lo, hi, Plus, &mut |c, r, v| f(r, c, v));
    }
}

/// The captured levels (tail included) *are* the snapshot's cursor form —
/// reader-native products run over a point-in-time capture while the
/// source keeps ingesting.
impl<V: ScalarType> crate::reader::CursorReader<V> for MatrixSnapshot<V> {
    fn with_level_dcsrs(&mut self, f: &mut dyn FnMut(&[&Dcsr<V>])) {
        f(&self.level_dcsrs());
    }

    /// Served from the captured degree-index view when the source settled
    /// before capture; `None` (caller sweeps) when a pending tail exists.
    fn out_degrees(&mut self) -> Option<Vec<(Index, u64)>> {
        self.index.as_ref().map(|ix| ix.row_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn snapshot_is_immune_to_source_mutation() {
        let mut m = Matrix::<u64>::new(1 << 20, 1 << 20);
        m.accum_tuples(&[1, 1, 5], &[1, 2, 5], &[10, 20, 50])
            .unwrap();
        m.wait();
        let mut snap = MatrixSnapshot::new(
            "snap",
            m.nrows(),
            m.ncols(),
            vec![m.settled_arc()],
            (&[], &[], &[]),
            None,
        );
        // Mutate the source: copy-on-write must leave the snapshot alone.
        m.accum_element(9, 9, 99).unwrap();
        m.wait();
        assert_eq!(m.nvals(), 4);
        assert_eq!(snap.read_nnz(), 3);
        assert_eq!(snap.read_get(1, 2), Some(20));
        assert_eq!(snap.read_get(9, 9), None);
        assert_eq!(snap.read_row_degree(1), 2);
        assert_eq!(snap.read_row_reduce(1), Some(30));
        assert_eq!(snap.read_top_k(1), vec![(1, 2)]);
        let mut got = Vec::new();
        snap.read_entries(&mut |r, c, v| got.push((r, c, v)));
        assert_eq!(got, vec![(1, 1, 10), (1, 2, 20), (5, 5, 50)]);
        assert_eq!(snap.read_dims(), (1 << 20, 1 << 20));
        assert_eq!(snap.reader_name(), "snap");
        assert!(!snap.has_index());
    }

    #[test]
    fn pending_tail_copy_compresses_and_answers() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.accum_tuples(&[3], &[3], &[3]).unwrap();
        m.wait();
        // Captured through &self with a live pending tail (duplicates on
        // (7, 7) must combine under +).
        m.accum_tuples(&[7, 7, 3], &[7, 7, 4], &[1, 2, 4]).unwrap();
        let (pr, pc, pv) = m.pending_parts();
        let mut snap = MatrixSnapshot::new(
            "snap",
            m.nrows(),
            m.ncols(),
            vec![m.settled_arc()],
            (pr, pc, pv),
            None,
        );
        assert_eq!(snap.read_nnz(), 3);
        assert_eq!(snap.read_get(7, 7), Some(3));
        assert_eq!(snap.read_get(3, 4), Some(4));
        assert_eq!(snap.read_row_degree(3), 2);
        let hist = snap.read_degree_histogram();
        assert_eq!(hist.get(&2), Some(&1));
        assert_eq!(hist.get(&1), Some(&1));
        let mut range = Vec::new();
        snap.read_row_range(4, 100, &mut |r, c, v| range.push((r, c, v)));
        assert_eq!(range, vec![(7, 7, 3)]);
    }

    #[test]
    fn snapshot_column_reads_with_and_without_view() {
        use crate::degree_index::DegreeIndex;
        let mut m = Matrix::<u64>::new(1 << 20, 1 << 20);
        m.accum_tuples(&[1, 2, 5, 9], &[7, 7, 7, 2], &[1, 2, 3, 4])
            .unwrap();
        m.wait();
        // An Arc-shared column view captured alongside the levels.
        let mut cix = DegreeIndex::<u64>::new();
        cix.activate();
        cix.observe_dcsr_transposed(m.dcsr());
        let mut snap = MatrixSnapshot::new(
            "snap",
            m.nrows(),
            m.ncols(),
            vec![m.settled_arc()],
            (&[], &[], &[]),
            None,
        )
        .with_col_index(Some(cix.view()));
        assert!(snap.has_col_index());
        assert_eq!(snap.read_col_degree(7), 3);
        assert_eq!(snap.read_col_reduce(7), Some(6));
        assert_eq!(snap.read_in_top_k(1), vec![(7, 3)]);
        let mut col = Vec::new();
        snap.read_col(7, &mut col);
        assert_eq!(col, vec![(1, 1), (2, 2), (5, 3)]);
        // The source keeps mutating; the snapshot keeps its capture.
        m.accum_element(3, 7, 9).unwrap();
        m.wait();
        snap.read_col(7, &mut col);
        assert_eq!(col, vec![(1, 1), (2, 2), (5, 3)]);
        assert_eq!(snap.read_col_degree(7), 3);
        // Without a view the lazily-built shadow serves the same answers.
        let mut plain = MatrixSnapshot::new(
            "plain",
            m.nrows(),
            m.ncols(),
            vec![m.settled_arc()],
            (&[], &[], &[]),
            None,
        );
        assert!(!plain.has_col_index());
        assert_eq!(plain.read_col_degree(7), 4);
        assert_eq!(plain.read_in_top_k(1), vec![(7, 4)]);
        let hist = plain.read_in_degree_histogram();
        assert_eq!(hist.get(&4), Some(&1));
        assert_eq!(hist.get(&1), Some(&1));
        let mut got = Vec::new();
        plain.read_col_range(0, 8, &mut |r, c, v| got.push((r, c, v)));
        assert_eq!(
            got,
            vec![(9, 2, 4), (1, 7, 1), (2, 7, 2), (3, 7, 9), (5, 7, 3)]
        );
    }
}
