//! The public [`Matrix`] type: a hypersparse matrix with SuiteSparse-style
//! pending tuples.
//!
//! A `Matrix<T>` is a settled [`Dcsr`] plus an append-only [`Coo`] of
//! *pending tuples*.  Point updates ([`Matrix::set_element`],
//! [`Matrix::accum_element`]) go to the pending buffer in `O(1)`; whole-matrix
//! operations and queries first call [`Matrix::wait`], which sorts the
//! pending tuples and merges them into the settled structure — the same
//! "defer and batch" idea the hierarchical matrix generalises to multiple
//! levels.

use crate::cursor::TopKScratch;
use crate::error::{GrbError, GrbResult};
use crate::formats::coo::Coo;
use crate::formats::dcsr::{Dcsr, MergeScratch};
use crate::formats::{Entry, MemoryFootprint};
use crate::index::{validate_dims, validate_index, Index};
use crate::ops::binary::{Plus, Second};
use crate::ops::BinaryOp;
use crate::types::ScalarType;
use std::sync::Arc;

/// A hypersparse matrix over scalar type `T`.
///
/// The settled structure lives behind an [`Arc`] so read paths can take
/// O(1) *snapshots* of it ([`Matrix::settled_arc`]): a snapshot holder and
/// the matrix share the structure until the next mutation, which
/// copy-on-writes ([`Arc::make_mut`]) — free in the common unshared case
/// (a pointer uniqueness check), one structural clone when a snapshot is
/// outstanding.  This is what lets hierarchical levels hand out cheap
/// level snapshots that keep answering while ingest continues.
///
/// See the [crate-level documentation](crate) for an overview and examples.
#[derive(Debug)]
pub struct Matrix<T> {
    nrows: Index,
    ncols: Index,
    settled: Arc<Dcsr<T>>,
    pending: Coo<T>,
    /// Number of pending tuples at which `wait()` is triggered automatically.
    pending_limit: usize,
    /// Reusable sort/merge buffers: every settle and every in-place
    /// accumulate goes through these instead of allocating fresh vectors.
    /// Not part of the matrix *value* (excluded from `PartialEq`).
    scratch: MergeScratch<T>,
    /// Reusable top-k heap buffer: repeated degree-ranking queries (the
    /// mixed-workload hot loop) reuse one allocation instead of building a
    /// fresh heap per call.  A cache, like `scratch`.
    topk_scratch: TopKScratch,
    /// Lazily-built column-major twin: the settled structure transposed
    /// (an `ncols x nrows` [`Dcsr`] whose "rows" are this matrix's
    /// columns).  Built on the first column-side query and invalidated
    /// whenever the settled structure changes, so pure-ingest workloads
    /// never pay for it.  Derived content, not part of the matrix *value*
    /// (excluded from `PartialEq`, shared by `Clone`).
    col_shadow: Option<Arc<Dcsr<T>>>,
}

/// Clones copy the represented content but start with *empty* scratch
/// buffers: the scratch is a cache, and the clone-and-settle query paths
/// (`nvals`, `to_settled`) would otherwise deep-copy up to a settled
/// structure's worth of staging space just to drop it.
impl<T: Clone> Clone for Matrix<T> {
    fn clone(&self) -> Self {
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            // Shares the settled structure; a later mutation of either
            // copy-on-writes its own.
            settled: Arc::clone(&self.settled),
            pending: self.pending.clone(),
            pending_limit: self.pending_limit,
            scratch: MergeScratch::default(),
            topk_scratch: TopKScratch::default(),
            // Immutable once built, so clones share it like the settled
            // structure; the next mutation of either copy drops its own.
            col_shadow: self.col_shadow.clone(),
        }
    }
}

/// Equality is over the represented content (dimensions, settled structure,
/// pending tuples) — the scratch buffers are a cache and excluded.
impl<T: ScalarType> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.pending_limit == other.pending_limit
            && self.settled == other.settled
            && self.pending == other.pending
    }
}

/// Default number of pending tuples before an automatic `wait()`.
///
/// SuiteSparse grows its pending list adaptively; a fixed, generous default
/// keeps behaviour predictable for the streaming benchmarks (the hierarchy
/// supplies the adaptivity instead).
pub const DEFAULT_PENDING_LIMIT: usize = 1 << 20;

impl<T: ScalarType> Matrix<T> {
    /// Create an empty `nrows x ncols` matrix.
    ///
    /// # Panics
    /// Panics on invalid dimensions; use [`Matrix::try_new`] to handle the
    /// error instead.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Self::try_new(nrows, ncols).expect("invalid matrix dimensions")
    }

    /// Fallible constructor.
    pub fn try_new(nrows: Index, ncols: Index) -> GrbResult<Self> {
        validate_dims(nrows, ncols)?;
        Ok(Self {
            nrows,
            ncols,
            settled: Arc::new(Dcsr::try_new(nrows, ncols)?),
            pending: Coo::try_new(nrows, ncols)?,
            pending_limit: DEFAULT_PENDING_LIMIT,
            scratch: MergeScratch::new(),
            topk_scratch: TopKScratch::default(),
            col_shadow: None,
        })
    }

    /// Build a matrix from tuple slices, combining duplicates with `dup`
    /// (the `GrB_Matrix_build` equivalent).
    pub fn from_tuples<Op: BinaryOp<T>>(
        nrows: Index,
        ncols: Index,
        rows: &[Index],
        cols: &[Index],
        vals: &[T],
        dup: Op,
    ) -> GrbResult<Self> {
        let settled = Dcsr::from_tuples(nrows, ncols, rows, cols, vals, dup)?;
        Ok(Self {
            nrows,
            ncols,
            settled: Arc::new(settled),
            pending: Coo::try_new(nrows, ncols)?,
            pending_limit: DEFAULT_PENDING_LIMIT,
            scratch: MergeScratch::new(),
            topk_scratch: TopKScratch::default(),
            col_shadow: None,
        })
    }

    /// Wrap an existing settled [`Dcsr`] as a matrix.
    pub fn from_dcsr(d: Dcsr<T>) -> Self {
        Self {
            nrows: d.nrows(),
            ncols: d.ncols(),
            pending: Coo::new(d.nrows(), d.ncols()),
            pending_limit: DEFAULT_PENDING_LIMIT,
            settled: Arc::new(d),
            scratch: MergeScratch::new(),
            topk_scratch: TopKScratch::default(),
            col_shadow: None,
        }
    }

    /// Set the number of pending tuples that triggers an automatic
    /// [`Matrix::wait`].  Returns `self` for builder-style chaining.
    pub fn with_pending_limit(mut self, limit: usize) -> Self {
        self.pending_limit = limit.max(1);
        self
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored entries.
    ///
    /// Requires no mutation: pending tuples are counted conservatively by
    /// settling a clone only when pending tuples exist.  Use
    /// [`Matrix::nvals_settled`] + [`Matrix::npending`] to inspect the split
    /// without any work.
    pub fn nvals(&self) -> usize {
        if self.pending.is_empty() {
            self.settled.nvals()
        } else {
            // Cheap path impossible: duplicates between pending and settled
            // may collapse. Clone-and-settle for correctness.
            let mut tmp = self.clone();
            tmp.wait();
            tmp.settled.nvals()
        }
    }

    /// Number of entries in the settled (compressed) structure only.
    pub fn nvals_settled(&self) -> usize {
        self.settled.nvals()
    }

    /// Number of pending (not yet merged) tuples.
    pub fn npending(&self) -> usize {
        self.pending.len()
    }

    /// True when the matrix stores no entries at all.
    pub fn is_empty(&self) -> bool {
        self.settled.is_empty() && self.pending.is_empty()
    }

    /// Number of non-empty rows in the settled structure.
    pub fn nrows_nonempty(&self) -> usize {
        self.settled.nrows_nonempty()
    }

    /// Overwrite the element at `(row, col)` ("last write wins").
    pub fn set_element(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.pending.push(row, col, val);
        if self.pending.len() >= self.pending_limit {
            self.wait_with(Second);
        }
        Ok(())
    }

    /// Accumulate `val` into `(row, col)` under `+` — the streaming-update
    /// operation of the paper (`A(i,j) += v`).
    pub fn accum_element(&mut self, row: Index, col: Index, val: T) -> GrbResult<()> {
        validate_index(row, self.nrows)?;
        validate_index(col, self.ncols)?;
        self.pending.push(row, col, val);
        if self.pending.len() >= self.pending_limit {
            self.wait();
        }
        Ok(())
    }

    /// Accumulate a batch of tuples under `+` — the bulk insert path.
    ///
    /// The whole batch is validated in one pass and appended with three bulk
    /// extends; the automatic-settle check runs once per batch instead of
    /// once per tuple.  The batch applies atomically: on any invalid index
    /// nothing is inserted.
    pub fn accum_tuples(&mut self, rows: &[Index], cols: &[Index], vals: &[T]) -> GrbResult<()> {
        crate::sink::check_tuple_lengths(rows, cols, vals)?;
        self.pending.extend_from_slices(rows, cols, vals)?;
        if self.pending.len() >= self.pending_limit {
            self.wait();
        }
        Ok(())
    }

    /// Force all pending tuples into the settled structure using `+` on
    /// duplicates (the common accumulate semantics).
    pub fn wait(&mut self) {
        self.wait_with(Plus);
    }

    /// Force all pending tuples into the settled structure using an explicit
    /// duplicate-combination operator.
    ///
    /// The settle reuses the matrix's internal sort/merge scratch buffers
    /// across calls, so steady-state streaming (append — settle — append …)
    /// performs no allocation once the buffers have grown to the working-set
    /// size.
    pub fn wait_with<Op: BinaryOp<T>>(&mut self, dup: Op) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_dedup_with(dup, &mut self.scratch);
        Arc::make_mut(&mut self.settled)
            .merge_sorted_coo_into(&self.pending, dup, &mut self.scratch)
            .expect("pending tuples are within bounds");
        self.pending.clear();
        self.col_shadow = None;
    }

    /// [`Matrix::wait`] with a hook into the settle's dedup-unpack: after
    /// the pending tuples are sorted and in-batch-deduplicated under `+`
    /// but *before* they merge into the settled structure, `observe` sees
    /// the batch as sorted row-major parallel slices.  This is the event
    /// an incremental [`DegreeIndex`](crate::degree_index::DegreeIndex)
    /// maintains itself on: the batch is exactly the set of cells whose
    /// stored values change in this settle.
    #[allow(clippy::type_complexity)]
    pub fn wait_observed(&mut self, observe: &mut dyn FnMut(&[Index], &[Index], &[T])) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_dedup_with(Plus, &mut self.scratch);
        {
            let (r, c, v) = self.pending.parts();
            observe(r, c, v);
        }
        Arc::make_mut(&mut self.settled)
            .merge_sorted_coo_into(&self.pending, Plus, &mut self.scratch)
            .expect("pending tuples are within bounds");
        self.pending.clear();
        self.col_shadow = None;
    }

    /// Accumulate a whole matrix in place: `self = self ⊕ other` under `+`.
    ///
    /// This is the cascade primitive of the hierarchical matrix in its
    /// allocation-free form: both operands are settled, then merged through
    /// the internal scratch buffers ([`Dcsr::merge_into`]) — `self`'s old
    /// structure becomes the next merge's staging space instead of being
    /// freed and reallocated.
    pub fn accum_matrix(&mut self, other: &Matrix<T>) -> GrbResult<()> {
        self.accum_matrix_op(other, Plus)
    }

    /// [`Matrix::accum_matrix`] under an explicit combination operator.
    pub fn accum_matrix_op<Op: BinaryOp<T>>(&mut self, other: &Matrix<T>, op: Op) -> GrbResult<()> {
        if self.nrows != other.nrows || self.ncols != other.ncols {
            return Err(GrbError::DimensionMismatch {
                detail: format!(
                    "{}x{} vs {}x{}",
                    self.nrows, self.ncols, other.nrows, other.ncols
                ),
            });
        }
        // Pending duplicates settle under `+` (exactly as the functional
        // `ewise_add` settles its operands); `op` applies only across the
        // two operands.
        self.wait();
        self.col_shadow = None;
        if other.npending() == 0 {
            Arc::make_mut(&mut self.settled).merge_into(other.dcsr(), op, &mut self.scratch)
        } else {
            let settled_other = other.to_settled();
            Arc::make_mut(&mut self.settled).merge_into(settled_other.dcsr(), op, &mut self.scratch)
        }
    }

    /// Value at `(row, col)` taking pending tuples into account
    /// (pending values accumulate under `+`).
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        let mut acc = self.settled.get(row, col);
        for (r, c, v) in self.pending.iter() {
            if r == row && c == col {
                acc = Some(match acc {
                    Some(a) => a.add(v),
                    None => v,
                });
            }
        }
        acc
    }

    /// Remove every stored entry, keeping dimensions.  Frees the settled
    /// structure's buffers; see [`Matrix::clear_retaining_capacity`] for the
    /// streaming variant.
    pub fn clear(&mut self) {
        self.settled = Arc::new(Dcsr::new(self.nrows, self.ncols));
        self.pending.clear();
        self.col_shadow = None;
    }

    /// Remove every stored entry but keep every buffer's capacity, so the
    /// matrix can be refilled without touching the allocator.  Used by the
    /// hierarchical cascade to clear a level after moving it up.
    pub fn clear_retaining_capacity(&mut self) {
        // When a snapshot shares the structure, detach instead of
        // copy-on-writing a structure we are about to empty.
        match Arc::get_mut(&mut self.settled) {
            Some(d) => d.clear_retaining(),
            None => self.settled = Arc::new(Dcsr::new(self.nrows, self.ncols)),
        }
        self.pending.clear();
        self.col_shadow = None;
    }

    /// Access the settled hypersparse structure (pending tuples excluded).
    ///
    /// Kernels call [`Matrix::wait`] first, so in practice this is the whole
    /// matrix.
    pub fn dcsr(&self) -> &Dcsr<T> {
        &self.settled
    }

    /// An O(1) shared handle to the settled structure — the snapshot
    /// primitive.  The holder keeps reading this exact structure while the
    /// matrix keeps mutating (the next settle/cascade copy-on-writes the
    /// matrix's own copy).  Pending tuples are excluded; settle first
    /// ([`Matrix::wait`] / [`Matrix::wait_observed`]) for the full content.
    pub fn settled_arc(&self) -> Arc<Dcsr<T>> {
        Arc::clone(&self.settled)
    }

    /// The reusable top-k scratch paired with this matrix's read path.
    pub(crate) fn topk_scratch(&mut self) -> &mut TopKScratch {
        &mut self.topk_scratch
    }

    /// The column-major twin of the settled structure: an `ncols x nrows`
    /// [`Dcsr`] storing the transpose, so a column extract is a *row*
    /// lookup on the twin — O(k) instead of an O(nnz) sweep.
    ///
    /// Lazy and cached: the first call settles pending tuples and builds
    /// the transpose (one O(nnz log nnz) sort); later calls are O(1) until
    /// the next mutation invalidates it.  Holders share the structure
    /// through the [`Arc`] exactly like [`Matrix::settled_arc`] snapshots.
    ///
    /// Callers that route settles through an observer hook (the
    /// hierarchical levels feeding a [`DegreeIndex`]) must settle *before*
    /// calling this — the internal `wait()` here is a plain, unobserved
    /// settle.
    ///
    /// [`DegreeIndex`]: crate::degree_index::DegreeIndex
    pub fn col_shadow(&mut self) -> Arc<Dcsr<T>> {
        self.wait();
        if self.col_shadow.is_none() {
            let (rows, cols, vals) = self.settled.extract_tuples();
            let t = Dcsr::from_tuples(self.ncols, self.nrows, &cols, &rows, &vals, Plus)
                .expect("transposed tuples stay within the swapped dims");
            self.col_shadow = Some(Arc::new(t));
        }
        Arc::clone(self.col_shadow.as_ref().expect("just built"))
    }

    /// Whether the column twin is currently materialised — lets tests and
    /// the overhead report verify lazy activation (pure ingest never
    /// builds it).
    pub fn has_col_shadow(&self) -> bool {
        self.col_shadow.is_some()
    }

    /// Settle pending tuples and return the complete hypersparse structure.
    pub fn settled_dcsr(&mut self) -> &Dcsr<T> {
        self.wait();
        &self.settled
    }

    /// The pending (not yet settled) tuples as parallel slices — read-side
    /// callers fold these in after merging the settled structures, instead
    /// of clone-and-settling the whole matrix.
    pub fn pending_parts(&self) -> (&[Index], &[Index], &[T]) {
        self.pending.parts()
    }

    /// A settled copy of this matrix (does not mutate `self`).
    pub fn to_settled(&self) -> Matrix<T> {
        let mut m = self.clone();
        m.wait();
        m
    }

    /// Iterate over settled entries in row-major order.  Call
    /// [`Matrix::wait`] first if pending tuples must be included.
    pub fn iter_settled(&self) -> impl Iterator<Item = Entry<T>> + '_ {
        self.settled.iter()
    }

    /// Extract all tuples (row-major, pending folded in) without mutating `self`.
    pub fn extract_tuples(&self) -> (Vec<Index>, Vec<Index>, Vec<T>) {
        if self.pending.is_empty() {
            self.settled.extract_tuples()
        } else {
            self.to_settled().settled.extract_tuples()
        }
    }

    /// Total bytes of memory used (settled + pending + scratch structures).
    ///
    /// The scratch buffers are included because the merge ping-pong keeps
    /// them at roughly the settled structure's size once the matrix has
    /// cascaded/settled — omitting them would under-report the resident
    /// footprint by up to 2x.
    pub fn memory(&self) -> MemoryFootprint {
        let s = self.settled.memory();
        let p = self.pending.memory();
        let sc = self.scratch.footprint();
        let mut f = MemoryFootprint {
            index_bytes: s.index_bytes + p.index_bytes + sc.index_bytes,
            value_bytes: s.value_bytes + p.value_bytes + sc.value_bytes,
        };
        if let Some(shadow) = &self.col_shadow {
            let sh = shadow.memory();
            f.index_bytes += sh.index_bytes;
            f.value_bytes += sh.value_bytes;
        }
        f
    }

    /// Validate internal invariants (used by property tests).
    pub fn check_invariants(&self) -> GrbResult<()> {
        self.settled.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_matrix_is_empty() {
        let m = Matrix::<f64>::new(1 << 32, 1 << 32);
        assert!(m.is_empty());
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows(), 1 << 32);
    }

    #[test]
    fn invalid_dims() {
        assert!(Matrix::<f64>::try_new(0, 1).is_err());
    }

    #[test]
    fn accum_element_accumulates() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.accum_element(5, 7, 2).unwrap();
        m.accum_element(5, 7, 3).unwrap();
        assert_eq!(m.get(5, 7), Some(5));
        assert_eq!(m.npending(), 2);
        m.wait();
        assert_eq!(m.npending(), 0);
        assert_eq!(m.get(5, 7), Some(5));
        assert_eq!(m.nvals(), 1);
    }

    #[test]
    fn set_element_last_write_wins() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.set_element(5, 7, 2).unwrap();
        m.set_element(5, 7, 9).unwrap();
        m.wait_with(Second);
        assert_eq!(m.get(5, 7), Some(9));
        assert_eq!(m.nvals(), 1);
    }

    #[test]
    fn mixed_settled_and_pending_get() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.accum_element(1, 1, 10).unwrap();
        m.wait();
        m.accum_element(1, 1, 5).unwrap();
        // settled 10 + pending 5
        assert_eq!(m.get(1, 1), Some(15));
        assert_eq!(m.nvals(), 1);
        assert_eq!(m.nvals_settled(), 1);
        assert_eq!(m.npending(), 1);
    }

    #[test]
    fn pending_limit_triggers_auto_wait() {
        let mut m = Matrix::<u64>::new(1000, 1000).with_pending_limit(8);
        for i in 0..20 {
            m.accum_element(i % 10, i % 10, 1).unwrap();
        }
        assert!(m.npending() < 8);
        assert!(m.nvals_settled() > 0);
        // Total content is still correct.
        let total: u64 = m.extract_tuples().2.iter().sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = Matrix::<u64>::new(10, 10);
        assert!(m.accum_element(10, 0, 1).is_err());
        assert!(m.set_element(0, 10, 1).is_err());
        assert!(m.accum_tuples(&[1, 11], &[1, 1], &[1, 1]).is_err());
    }

    #[test]
    fn accum_tuples_batch() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.accum_tuples(&[1, 2, 1], &[1, 2, 1], &[5, 6, 7]).unwrap();
        assert_eq!(m.get(1, 1), Some(12));
        assert_eq!(m.get(2, 2), Some(6));
        assert!(m.accum_tuples(&[1], &[1, 2], &[1]).is_err());
    }

    #[test]
    fn from_tuples_build() {
        let m = Matrix::from_tuples(
            1 << 40,
            1 << 40,
            &[3, 3, 1 << 39],
            &[4, 4, 0],
            &[1.0f64, 2.0, 3.0],
            Plus,
        )
        .unwrap();
        assert_eq!(m.nvals(), 2);
        assert_eq!(m.get(3, 4), Some(3.0));
        assert_eq!(m.get(1 << 39, 0), Some(3.0));
    }

    #[test]
    fn clear_resets() {
        let mut m = Matrix::<u64>::new(10, 10);
        m.accum_element(1, 1, 1).unwrap();
        m.wait();
        m.accum_element(2, 2, 2).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows(), 10);
    }

    #[test]
    fn extract_tuples_includes_pending_without_mutation() {
        let mut m = Matrix::<u64>::new(10, 10);
        m.accum_element(1, 1, 1).unwrap();
        m.wait();
        m.accum_element(2, 2, 2).unwrap();
        let (r, c, v) = m.extract_tuples();
        assert_eq!(r, vec![1, 2]);
        assert_eq!(c, vec![1, 2]);
        assert_eq!(v, vec![1, 2]);
        // still pending afterwards (no mutation through &self)
        assert_eq!(m.npending(), 1);
    }

    #[test]
    fn to_settled_does_not_mutate_original() {
        let mut m = Matrix::<u64>::new(10, 10);
        m.accum_element(3, 3, 7).unwrap();
        let s = m.to_settled();
        assert_eq!(s.npending(), 0);
        assert_eq!(s.nvals_settled(), 1);
        assert_eq!(m.npending(), 1);
        assert_eq!(m.nvals_settled(), 0);
    }

    #[test]
    fn memory_reports_nonzero() {
        let mut m = Matrix::<u64>::new(10, 10);
        m.accum_element(1, 2, 3).unwrap();
        assert!(m.memory().total() > 0);
    }

    #[test]
    fn accum_matrix_in_place_equals_ewise_add() {
        let mut a = Matrix::<u64>::new(1 << 20, 1 << 20);
        a.accum_tuples(&[1, 2, 3], &[1, 2, 3], &[10, 20, 30])
            .unwrap();
        let mut b = Matrix::<u64>::new(1 << 20, 1 << 20);
        b.accum_tuples(&[2, 3, 4], &[2, 3, 4], &[5, 6, 7]).unwrap();
        let expect = crate::ops::ewise_add::ewise_add(&a, &b, Plus);
        a.accum_matrix(&b).unwrap();
        assert_eq!(a.extract_tuples(), expect.extract_tuples());
        // b untouched (still has its pending tuples).
        assert_eq!(b.npending(), 3);
        // Repeated accumulation reuses scratch and stays correct.
        let expect2 = crate::ops::ewise_add::ewise_add(&a, &b, Plus);
        a.accum_matrix(&b).unwrap();
        assert_eq!(a.extract_tuples(), expect2.extract_tuples());

        let wrong = Matrix::<u64>::new(4, 4);
        assert!(a.accum_matrix(&wrong).is_err());
    }

    #[test]
    fn clear_retaining_capacity_resets_content() {
        let mut m = Matrix::<u64>::new(100, 100);
        m.accum_tuples(&[1, 2], &[1, 2], &[1, 2]).unwrap();
        m.wait();
        m.accum_element(3, 3, 3).unwrap();
        let bytes = m.memory().total();
        m.clear_retaining_capacity();
        assert!(m.is_empty());
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.memory().total(), bytes);
        // Refill after clearing works.
        m.accum_element(5, 5, 5).unwrap();
        m.wait();
        assert_eq!(m.get(5, 5), Some(5));
    }

    #[test]
    fn accum_tuples_batch_is_atomic_on_error() {
        let mut m = Matrix::<u64>::new(10, 10);
        assert!(m.accum_tuples(&[1, 99], &[1, 1], &[1, 1]).is_err());
        assert_eq!(m.npending(), 0);
        assert_eq!(m.nvals(), 0);
    }

    #[test]
    fn accum_tuples_triggers_single_settle_per_batch() {
        let mut m = Matrix::<u64>::new(1000, 1000).with_pending_limit(64);
        let rows: Vec<u64> = (0..256).map(|i| i % 100).collect();
        let cols = rows.clone();
        let vals = vec![1u64; 256];
        m.accum_tuples(&rows, &cols, &vals).unwrap();
        // The settle check runs after the bulk extend: everything settled.
        assert_eq!(m.npending(), 0);
        let total: u64 = m.extract_tuples().2.iter().sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn col_shadow_is_the_transpose_and_lazy() {
        let mut m = Matrix::<u64>::new(1 << 32, 1 << 20);
        m.accum_tuples(&[5, 5, 9, 5], &[1, 2, 2, 2], &[10, 20, 30, 5])
            .unwrap();
        assert!(!m.has_col_shadow());
        let shadow = m.col_shadow();
        assert!(m.has_col_shadow());
        assert_eq!((shadow.nrows(), shadow.ncols()), (1 << 20, 1 << 32));
        // Shadow "rows" are the matrix's columns, duplicates combined.
        assert_eq!(shadow.row(2), Some((&[5u64, 9][..], &[25u64, 30][..])));
        assert_eq!(shadow.row(1), Some((&[5u64][..], &[10u64][..])));
        assert_eq!(shadow.row(7), None);
        // Cached: a second call hands out the same structure.
        assert!(Arc::ptr_eq(&shadow, &m.col_shadow()));
        // Clones share the cache; mutating the original invalidates only
        // the original's.
        let clone = m.clone();
        assert!(clone.has_col_shadow());
        m.accum_element(9, 1, 1).unwrap();
        m.wait();
        assert!(!m.has_col_shadow());
        assert!(clone.has_col_shadow());
        assert_eq!(
            m.col_shadow().row(1),
            Some((&[5u64, 9][..], &[10u64, 1][..]))
        );
        // Clearing drops it too.
        m.clear();
        assert!(!m.has_col_shadow());
        assert_eq!(m.col_shadow().nvals(), 0);
    }

    #[test]
    fn col_shadow_invalidated_by_matrix_accum() {
        let mut a = Matrix::<u64>::new(100, 100);
        a.accum_element(1, 3, 7).unwrap();
        let _ = a.col_shadow();
        let mut b = Matrix::<u64>::new(100, 100);
        b.accum_element(2, 3, 5).unwrap();
        a.accum_matrix(&b).unwrap();
        assert!(!a.has_col_shadow());
        assert_eq!(
            a.col_shadow().row(3),
            Some((&[1u64, 2][..], &[7u64, 5][..]))
        );
    }

    #[test]
    fn invariants_hold_after_waits() {
        let mut m = Matrix::<i64>::new(1 << 20, 1 << 20);
        for i in 0..1000i64 {
            let r = (i * 7919 % 1000) as u64;
            let c = (i * 104729 % 1000) as u64;
            m.accum_element(r, c, i).unwrap();
            if i % 100 == 0 {
                m.wait();
                m.check_invariants().unwrap();
            }
        }
        m.wait();
        m.check_invariants().unwrap();
    }
}
