//! K-way merged cursors over [`Dcsr`] levels — the read-side dual of the
//! cascade's merge kernel.
//!
//! A hierarchical hypersparse matrix represents `A = Σ_i A_i` but stores the
//! levels separately; every query used to *materialise* that sum into a
//! fresh matrix before answering.  The cursor kernel answers queries by
//! walking the L settled level structures simultaneously — one sorted
//! position per level, the duplicate-combination operator applied on the
//! fly where levels collide — so point gets, row extracts, degree counts,
//! top-k scans, nnz and full sorted iteration all run without allocating a
//! merged copy.
//!
//! The same layer also *produces* merged structures: [`merge_levels`]
//! materialises `Σ levels` smallest-first through one reused
//! [`MergeScratch`](crate::formats::dcsr::MergeScratch), so a snapshot
//! performs O(1) allocations regardless of the level count — previously
//! the query path rebuilt the accumulator once per level.
//!
//! Collision order: where several levels store the same `(row, col)` cell
//! the operator is applied left-to-right in the order the levels appear in
//! the slice.  Every reader in the workspace uses the `Plus` monoid, for
//! which the order is immaterial (the paper's linearity argument).

use crate::error::{GrbError, GrbResult};
use crate::formats::dcsr::Dcsr;
use crate::formats::merge::{gallop_while, merge_row_adaptive, MergeTally, PairSink, PlaneSink};
use crate::index::Index;
use crate::ops::BinaryOp;
use crate::types::ScalarType;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A set of synchronised cursors, one per level, yielding the merged rows
/// of `Σ levels` in ascending row order.
///
/// Usage: call [`LevelCursors::next_row`] to advance to the next non-empty
/// row of the union; then [`LevelCursors::row_degree`],
/// [`LevelCursors::single_part`] or [`LevelCursors::fold_row`] inspect that
/// row's columns without materialising anything.  All scratch state is
/// reused across rows, so a full sweep performs no per-row allocation.
pub struct LevelCursors<'a, T> {
    levels: Vec<&'a Dcsr<T>>,
    /// Next unread row-slot per level.
    slot: Vec<usize>,
    /// Level indices that hold the current row (their `slot` already points
    /// one past it).
    active: Vec<usize>,
    /// Per-active-part column positions, reused by the column merges.
    pos: Vec<usize>,
    /// The active parts' slices, reused by the column merges.
    parts: Vec<(&'a [Index], &'a [T])>,
}

/// M-way column merge of one row's sorted parts: each distinct column is
/// emitted once, the values of every part holding it folded left-to-right
/// under `op`.  This is the *one* merge loop every cursor query shares —
/// degree counts pass an emit that only counts.  `pos` is caller scratch
/// (cleared here) so repeated sweeps reuse a single allocation.
fn merge_parts<T: ScalarType, Op: BinaryOp<T>>(
    parts: &[(&[Index], &[T])],
    pos: &mut Vec<usize>,
    op: Op,
    emit: &mut dyn FnMut(Index, T),
) {
    if parts.len() == 2 {
        // The common collision width (two levels share a row) dispatches to
        // the skew-aware two-way kernel — parts[0] stays the left operand,
        // preserving the left-to-right collision order.
        let mut tally = MergeTally::default();
        merge_row_adaptive(
            parts[0].0,
            parts[0].1,
            parts[1].0,
            parts[1].1,
            op,
            &mut |c, v| emit(c, v),
            &mut tally,
        );
        tally.commit();
        return;
    }
    pos.clear();
    pos.resize(parts.len(), 0);
    loop {
        let mut min: Option<Index> = None;
        for (i, &p) in pos.iter().enumerate() {
            if let Some(&c) = parts[i].0.get(p) {
                min = Some(match min {
                    Some(m) if m <= c => m,
                    _ => c,
                });
            }
        }
        let Some(col) = min else { break };
        let mut acc: Option<T> = None;
        for (i, p) in pos.iter_mut().enumerate() {
            if parts[i].0.get(*p) == Some(&col) {
                acc = Some(match acc {
                    Some(a) => op.apply(a, parts[i].1[*p]),
                    None => parts[i].1[*p],
                });
                *p += 1;
            }
        }
        emit(
            col,
            acc.expect("at least one part holds the minimum column"),
        );
    }
}

impl<'a, T: ScalarType> LevelCursors<'a, T> {
    /// Open cursors over `levels`.
    pub fn new(levels: &[&'a Dcsr<T>]) -> Self {
        Self {
            levels: levels.to_vec(),
            slot: vec![0; levels.len()],
            active: Vec::with_capacity(levels.len()),
            pos: Vec::with_capacity(levels.len()),
            parts: Vec::with_capacity(levels.len()),
        }
    }

    /// Open cursors positioned at the first row `>= lo` of each level — the
    /// range-scan entry point.  Each level skips its leading rows with one
    /// binary search instead of cursor steps.
    pub fn new_at(levels: &[&'a Dcsr<T>], lo: Index) -> Self {
        let mut c = Self::new(levels);
        for (l, d) in c.levels.iter().enumerate() {
            c.slot[l] = d.row_ids().partition_point(|&r| r < lo);
        }
        c
    }

    /// Advance to the next non-empty row of the union and return its id;
    /// `None` when every level is exhausted.
    pub fn next_row(&mut self) -> Option<Index> {
        let mut min: Option<Index> = None;
        for (l, d) in self.levels.iter().enumerate() {
            if let Some(&r) = d.row_ids().get(self.slot[l]) {
                min = Some(match min {
                    Some(m) if m <= r => m,
                    _ => r,
                });
            }
        }
        let row = min?;
        self.active.clear();
        for l in 0..self.levels.len() {
            if self.levels[l].row_ids().get(self.slot[l]) == Some(&row) {
                self.active.push(l);
                self.slot[l] += 1;
            }
        }
        Some(row)
    }

    /// The `i`-th part (column/value slices) of the current row.
    fn part(&self, i: usize) -> (&'a [Index], &'a [T]) {
        let l = self.active[i];
        self.levels[l].row_slot(self.slot[l] - 1)
    }

    /// When exactly one level holds the current row, its slices — the
    /// common hypersparse case (row collisions between levels are rare),
    /// which callers bulk-copy instead of merging element-wise.
    pub fn single_part(&self) -> Option<(&'a [Index], &'a [T])> {
        if self.active.len() == 1 {
            Some(self.part(0))
        } else {
            None
        }
    }

    /// Gather the active parts' slices into the reusable buffer and run
    /// the shared m-way merge over them.
    fn merge_active<Op: BinaryOp<T>>(&mut self, op: Op, emit: &mut dyn FnMut(Index, T)) {
        let mut parts = std::mem::take(&mut self.parts);
        parts.clear();
        for i in 0..self.active.len() {
            parts.push(self.part(i));
        }
        let mut pos = std::mem::take(&mut self.pos);
        merge_parts(&parts, &mut pos, op, emit);
        self.pos = pos;
        self.parts = parts;
    }

    /// Number of distinct columns in the current row.
    pub fn row_degree(&mut self) -> usize {
        if self.active.len() == 1 {
            return self.part(0).0.len();
        }
        let mut n = 0;
        self.merge_active(crate::ops::binary::First, &mut |_, _| n += 1);
        n
    }

    /// Merge the current row's columns under `op`, emitting
    /// `(col, combined value)` in ascending column order.
    pub fn fold_row<Op: BinaryOp<T>>(&mut self, op: Op, emit: &mut dyn FnMut(Index, T)) {
        if self.active.len() == 1 {
            let (cols, vals) = self.part(0);
            for j in 0..cols.len() {
                emit(cols[j], vals[j]);
            }
            return;
        }
        self.merge_active(op, emit);
    }

    /// Column-seek within the current row: binary-search each active part
    /// for `col`, folding the hits under `op` — the inner step of the
    /// transpose (column-extract) kernels.  `None` when the current row
    /// stores nothing in `col`.
    pub fn col_in_row<Op: BinaryOp<T>>(&self, col: Index, op: Op) -> Option<T> {
        let mut acc: Option<T> = None;
        for i in 0..self.active.len() {
            let (cols, vals) = self.part(i);
            if let Ok(j) = cols.binary_search(&col) {
                acc = Some(match acc {
                    Some(a) => op.apply(a, vals[j]),
                    None => vals[j],
                });
            }
        }
        acc
    }
}

/// Verify that every level matches the `nrows x ncols` target.
fn check_dims<T: ScalarType>(nrows: Index, ncols: Index, levels: &[&Dcsr<T>]) -> GrbResult<()> {
    for d in levels {
        if d.nrows() != nrows || d.ncols() != ncols {
            return Err(GrbError::DimensionMismatch {
                detail: format!("{nrows}x{ncols} vs level of {}x{}", d.nrows(), d.ncols()),
            });
        }
    }
    Ok(())
}

/// Per-level raw-array view used by the run-skipping sweeps: the cursor
/// position plus direct access to the four compressed arrays, so a *run*
/// of rows unique to one level costs three slice copies (or one pointer
/// subtraction, for counting) instead of a visit per row — the same trick
/// the cascade's two-way merge uses (`push_rows_bulk`), generalised to a
/// k-way frontier.
struct RawLevel<'a, T> {
    ids: &'a [Index],
    ptr: &'a [usize],
    cols: &'a [Index],
    vals: &'a [T],
    slot: usize,
}

impl<'a, T: ScalarType> RawLevel<'a, T> {
    fn open(levels: &[&'a Dcsr<T>]) -> Vec<Self> {
        levels
            .iter()
            .map(|d| {
                let (ids, ptr, cols, vals) = d.raw_parts();
                RawLevel {
                    ids,
                    ptr,
                    cols,
                    vals,
                    slot: 0,
                }
            })
            .collect()
    }

    fn head(&self) -> Option<Index> {
        self.ids.get(self.slot).copied()
    }

    /// One past the last slot whose row id stays below `bound`, found by
    /// galloping (the run is usually long when one level dominates a region
    /// of the row space, and short otherwise — gallop pays `O(log run)`
    /// either way).
    fn run_end(&self, bound: Option<Index>) -> usize {
        match bound {
            None => self.ids.len(),
            Some(b) => gallop_while(self.ids, self.slot + 1, |x| x < b),
        }
    }

    /// The column/value slices of the current head row.
    fn head_row(&self) -> (&'a [Index], &'a [T]) {
        let (lo, hi) = (self.ptr[self.slot], self.ptr[self.slot + 1]);
        (&self.cols[lo..hi], &self.vals[lo..hi])
    }
}

/// The k-way frontier state: the minimum head row, how many levels share
/// it, and the second-smallest distinct head row (the bulk-run bound).
fn frontier<T: ScalarType>(lvs: &[RawLevel<'_, T>]) -> Option<(Index, usize, Option<Index>)> {
    let mut min: Option<Index> = None;
    let mut count = 0usize;
    let mut second: Option<Index> = None;
    for lv in lvs {
        let Some(r) = lv.head() else { continue };
        match min {
            None => {
                min = Some(r);
                count = 1;
            }
            Some(m) if r == m => count += 1,
            Some(m) if r < m => {
                second = Some(m);
                min = Some(r);
                count = 1;
            }
            Some(_) => {
                if second.map_or(true, |s| r < s) {
                    second = Some(r);
                }
            }
        }
    }
    min.map(|m| (m, count, second))
}

/// Merge `levels` into one [`Dcsr`] — the materialisation kernel
/// `A = Σ_i A_i`.
///
/// Builds smallest-first through one reused [`MergeScratch`]
/// (the cascade's allocation-discipline applied to the read side): every
/// step is a two-way bulk-run merge whose staging buffers ping-pong with
/// the accumulator, so the whole materialisation performs O(1) allocations
/// regardless of the level count — the old query path allocated a rebuilt
/// accumulator per level.
///
/// `op` must be associative and commutative (a monoid operation, like the
/// `Plus` every reader uses): the merge order is chosen by size, not by
/// level position.
pub fn merge_levels<T: ScalarType, Op: BinaryOp<T>>(
    nrows: Index,
    ncols: Index,
    levels: &[&Dcsr<T>],
    op: Op,
) -> GrbResult<Dcsr<T>> {
    check_dims(nrows, ncols, levels)?;
    let mut order: Vec<usize> = (0..levels.len()).collect();
    order.sort_by_key(|&i| levels[i].nvals());
    let mut acc = Dcsr::try_new(nrows, ncols)?;
    let mut scratch = crate::formats::dcsr::MergeScratch::new();
    for &i in &order {
        acc.merge_into(levels[i], op, &mut scratch)?;
    }
    Ok(acc)
}

/// Number of distinct `(row, col)` cells in `Σ levels`, counted through the
/// cursors — no merged structure is built.  Runs of rows unique to one
/// level count as one `row_ptr` subtraction.
pub fn merged_nnz<T: ScalarType>(levels: &[&Dcsr<T>]) -> usize {
    let mut lvs = RawLevel::open(levels);
    let mut parts: Vec<(&[Index], &[T])> = Vec::with_capacity(levels.len());
    let mut pos: Vec<usize> = Vec::with_capacity(levels.len());
    let mut n = 0usize;
    while let Some((row, sharers, second)) = frontier(&lvs) {
        if sharers == 1 {
            let lv = lvs
                .iter_mut()
                .find(|lv| lv.head() == Some(row))
                .expect("frontier level present");
            let end = lv.run_end(second);
            n += lv.ptr[end] - lv.ptr[lv.slot];
            lv.slot = end;
        } else {
            parts.clear();
            for lv in lvs.iter_mut() {
                if lv.head() == Some(row) {
                    parts.push(lv.head_row());
                    lv.slot += 1;
                }
            }
            merge_parts(&parts, &mut pos, crate::ops::binary::First, &mut |_, _| {
                n += 1
            });
        }
    }
    n
}

/// Sorted row-major iteration over `Σ levels` under `op`.
pub fn for_each_merged<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    op: Op,
    f: &mut dyn FnMut(Index, Index, T),
) {
    let mut cur = LevelCursors::new(levels);
    while let Some(row) = cur.next_row() {
        cur.fold_row(op, &mut |c, v| f(row, c, v));
    }
}

/// Value of `Σ levels` at `(row, col)`: per-level binary-search gets
/// combined under `op`.
pub fn merged_point<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    row: Index,
    col: Index,
    op: Op,
) -> Option<T> {
    let mut acc: Option<T> = None;
    for d in levels {
        if let Some(v) = d.get(row, col) {
            acc = Some(match acc {
                Some(a) => op.apply(a, v),
                None => v,
            });
        }
    }
    acc
}

/// Merge one logical row of `Σ levels` into `out` (cleared first), sorted
/// by column, values combined under `op`.
pub fn merged_row_into<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    row: Index,
    op: Op,
    out: &mut Vec<(Index, T)>,
) {
    out.clear();
    let parts: Vec<(&[Index], &[T])> = levels.iter().filter_map(|d| d.row(row)).collect();
    match parts.len() {
        0 => {}
        1 => {
            let (cols, vals) = parts[0];
            out.extend(cols.iter().copied().zip(vals.iter().copied()));
        }
        2 => {
            // Two colliding parts: the skew-aware kernel with a tuple sink,
            // so skipped spans bulk-extend `out` instead of pushing one
            // element at a time.
            let mut tally = MergeTally::default();
            let mut sink = PairSink { out };
            merge_row_adaptive(
                parts[0].0, parts[0].1, parts[1].0, parts[1].1, op, &mut sink, &mut tally,
            );
            tally.commit();
        }
        _ => {
            let mut pos = Vec::with_capacity(parts.len());
            merge_parts(&parts, &mut pos, op, &mut |c, v| out.push((c, v)));
        }
    }
}

/// Number of distinct columns in row `row` of `Σ levels`.
pub fn merged_row_degree<T: ScalarType>(levels: &[&Dcsr<T>], row: Index) -> usize {
    let parts: Vec<(&[Index], &[T])> = levels.iter().filter_map(|d| d.row(row)).collect();
    match parts.len() {
        0 => 0,
        1 => parts[0].0.len(),
        _ => {
            let mut pos = Vec::with_capacity(parts.len());
            let mut n = 0;
            merge_parts(&parts, &mut pos, crate::ops::binary::First, &mut |_, _| {
                n += 1
            });
            n
        }
    }
}

/// Reduce row `row` of `Σ levels` to a scalar under `op` (`None` when the
/// row is empty).  For an associative, commutative `op` the collisions need
/// no column merge: every stored value folds in directly.
pub fn merged_row_reduce<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    row: Index,
    op: Op,
) -> Option<T> {
    let mut acc: Option<T> = None;
    for d in levels {
        if let Some((_, vals)) = d.row(row) {
            for &v in vals {
                acc = Some(match acc {
                    Some(a) => op.apply(a, v),
                    None => v,
                });
            }
        }
    }
    acc
}

/// The `k` rows of `Σ levels` with the most distinct columns, sorted by
/// degree descending then row id ascending — the "top talkers by fan-out"
/// query.  One cursor sweep with a size-`k` min-heap; no materialisation.
pub fn merged_top_k<T: ScalarType>(levels: &[&Dcsr<T>], k: usize) -> Vec<(Index, usize)> {
    merged_top_k_with(levels, k, &mut TopKScratch::default())
}

/// Reusable buffer for the top-k sweeps: the min-heap's backing vector
/// survives between queries, so a query-heavy mixed workload performs one
/// heap allocation total instead of one per top-k call.
#[derive(Debug, Clone, Default)]
pub struct TopKScratch {
    buf: Vec<Reverse<(usize, Reverse<Index>)>>,
}

/// [`merged_top_k`] through a caller-held [`TopKScratch`].
pub fn merged_top_k_with<T: ScalarType>(
    levels: &[&Dcsr<T>],
    k: usize,
    scratch: &mut TopKScratch,
) -> Vec<(Index, usize)> {
    if k == 0 {
        return Vec::new();
    }
    // Clear before heapifying: `from` on an empty Vec is free, while
    // heapifying leftover elements would sift garbage for nothing.
    scratch.buf.clear();
    let mut heap = BinaryHeap::from(std::mem::take(&mut scratch.buf));
    let mut cur = LevelCursors::new(levels);
    while let Some(row) = cur.next_row() {
        let d = cur.row_degree();
        heap.push(Reverse((d, Reverse(row))));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut buf = heap.into_vec();
    let mut out: Vec<(Index, usize)> = buf
        .drain(..)
        .map(|Reverse((d, Reverse(r)))| (r, d))
        .collect();
    scratch.buf = buf;
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// The degree histogram of `Σ levels` (`degree -> number of rows`),
/// counted through one cursor sweep — the fallback twin of the degree
/// index's O(distinct degrees) answer.
pub fn merged_degree_histogram<T: ScalarType>(
    levels: &[&Dcsr<T>],
) -> std::collections::BTreeMap<u64, u64> {
    let mut counts = std::collections::BTreeMap::new();
    let mut cur = LevelCursors::new(levels);
    while cur.next_row().is_some() {
        *counts.entry(cur.row_degree() as u64).or_insert(0u64) += 1;
    }
    counts
}

/// Sorted row-major iteration over the rows `lo..hi` (half-open) of
/// `Σ levels` under `op` — the subnet-style range scan.  Each level's
/// leading rows skip with one binary search; the sweep stops at the first
/// merged row `>= hi`, so cost is proportional to the *range's* content,
/// not the matrix's.
pub fn merged_row_range<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    lo: Index,
    hi: Index,
    op: Op,
    f: &mut dyn FnMut(Index, Index, T),
) {
    if lo >= hi {
        return;
    }
    let mut cur = LevelCursors::new_at(levels, lo);
    while let Some(row) = cur.next_row() {
        if row >= hi {
            break;
        }
        cur.fold_row(op, &mut |c, v| f(row, c, v));
    }
}

/// Extract one logical *column* of `Σ levels` into `out` (cleared first),
/// sorted by row, values combined under `op` — the transpose twin of
/// [`merged_row_into`].  Row-major storage cannot seek a column directly,
/// so each level is column-seeked independently (one binary search per
/// non-empty row), producing a sorted per-level hit plane; the planes then
/// fold left-to-right (level order, preserving the collision order)
/// through the same skew-aware merge kernel the cascade uses — levels
/// rarely store the same column in the same rows, so the folds are mostly
/// disjoint bulk copies or galloped skips.  `O(rows · log degree)` for the
/// seeks; this is the retained fallback, the column-shadow fast path
/// answers in `O(column degree)`.
pub fn merged_col_into<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    col: Index,
    op: Op,
    out: &mut Vec<(Index, T)>,
) {
    out.clear();
    let mut hits: Vec<(Vec<Index>, Vec<T>)> = Vec::new();
    for d in levels {
        let (ids, ptr, cols, vals) = d.raw_parts();
        let mut hit_rows: Vec<Index> = Vec::new();
        let mut hit_vals: Vec<T> = Vec::new();
        for slot in 0..ids.len() {
            let (lo, hi) = (ptr[slot], ptr[slot + 1]);
            if let Ok(j) = cols[lo..hi].binary_search(&col) {
                hit_rows.push(ids[slot]);
                hit_vals.push(vals[lo + j]);
            }
        }
        if !hit_rows.is_empty() {
            hits.push((hit_rows, hit_vals));
        }
    }
    let mut iter = hits.into_iter();
    let Some((mut acc_rows, mut acc_vals)) = iter.next() else {
        return;
    };
    let mut tally = MergeTally::default();
    let mut alt_rows: Vec<Index> = Vec::new();
    let mut alt_vals: Vec<T> = Vec::new();
    for (hit_rows, hit_vals) in iter {
        alt_rows.clear();
        alt_vals.clear();
        {
            let mut sink = PlaneSink {
                cols: &mut alt_rows,
                vals: &mut alt_vals,
            };
            merge_row_adaptive(
                &acc_rows, &acc_vals, &hit_rows, &hit_vals, op, &mut sink, &mut tally,
            );
        }
        std::mem::swap(&mut acc_rows, &mut alt_rows);
        std::mem::swap(&mut acc_vals, &mut alt_vals);
    }
    tally.commit();
    out.extend(acc_rows.iter().copied().zip(acc_vals.iter().copied()));
}

/// Number of distinct rows storing something in column `col` of
/// `Σ levels` (the column's in-degree), by column-seek sweep.
pub fn merged_col_degree<T: ScalarType>(levels: &[&Dcsr<T>], col: Index) -> usize {
    let mut cur = LevelCursors::new(levels);
    let mut n = 0;
    while cur.next_row().is_some() {
        if cur.col_in_row(col, crate::ops::binary::First).is_some() {
            n += 1;
        }
    }
    n
}

/// Reduce column `col` of `Σ levels` to a scalar under `op` (`None` when
/// the column is empty).  For an associative, commutative `op` the
/// cross-level collisions need no merge: every stored value folds in.
pub fn merged_col_reduce<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    col: Index,
    op: Op,
) -> Option<T> {
    let mut acc: Option<T> = None;
    for d in levels {
        let (ids, ptr, cols, vals) = d.raw_parts();
        for slot in 0..ids.len() {
            let (lo, hi) = (ptr[slot], ptr[slot + 1]);
            if let Ok(j) = cols[lo..hi].binary_search(&col) {
                acc = Some(match acc {
                    Some(a) => op.apply(a, vals[lo + j]),
                    None => vals[lo + j],
                });
            }
        }
    }
    acc
}

/// Distinct-row degree of every non-empty column of `Σ levels` — one full
/// merged sweep (cells are unique after the merge, so each counts once).
pub fn merged_col_degrees<T: ScalarType>(
    levels: &[&Dcsr<T>],
) -> std::collections::BTreeMap<Index, u64> {
    let mut degs = std::collections::BTreeMap::new();
    for_each_merged(levels, crate::ops::binary::First, &mut |_, c, _| {
        *degs.entry(c).or_insert(0u64) += 1;
    });
    degs
}

/// The `k` columns of `Σ levels` with the most distinct rows, sorted by
/// in-degree descending then column id ascending — the "top talkers by
/// fan-in" query's full-sweep fallback (`O(nnz)` plus a rank).
pub fn merged_in_top_k<T: ScalarType>(levels: &[&Dcsr<T>], k: usize) -> Vec<(Index, usize)> {
    if k == 0 {
        return Vec::new();
    }
    let mut all: Vec<(Index, usize)> = merged_col_degrees(levels)
        .into_iter()
        .map(|(c, d)| (c, d as usize))
        .collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// The in-degree histogram of `Σ levels` (`in-degree -> column count`),
/// by full sweep — the fallback twin of the column index's answer.
pub fn merged_in_degree_histogram<T: ScalarType>(
    levels: &[&Dcsr<T>],
) -> std::collections::BTreeMap<u64, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for (_, d) in merged_col_degrees(levels) {
        *counts.entry(d).or_insert(0u64) += 1;
    }
    counts
}

/// Column-major iteration over the columns `lo..hi` (half-open) of
/// `Σ levels` under `op`: `f(row, col, value)` fires in (col asc, row asc)
/// order.  Row-major levels cannot stream a column range directly, so this
/// fallback collects the matching cells from one merged row sweep and
/// sorts them into column-major order — the shadow fast path streams the
/// same order with no sort.
pub fn merged_col_range<T: ScalarType, Op: BinaryOp<T>>(
    levels: &[&Dcsr<T>],
    lo: Index,
    hi: Index,
    op: Op,
    f: &mut dyn FnMut(Index, Index, T),
) {
    if lo >= hi {
        return;
    }
    let mut hits: Vec<(Index, Index, T)> = Vec::new();
    for_each_merged(levels, op, &mut |r, c, v| {
        if c >= lo && c < hi {
            hits.push((c, r, v));
        }
    });
    hits.sort_unstable_by_key(|&(c, r, _)| (c, r));
    for (c, r, v) in hits {
        f(r, c, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Max, Plus};

    fn dcsr(entries: &[(u64, u64, u64)]) -> Dcsr<u64> {
        let rows: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u64> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<u64> = entries.iter().map(|e| e.2).collect();
        Dcsr::from_tuples(1 << 40, 1 << 40, &rows, &cols, &vals, Plus).unwrap()
    }

    fn sample_levels() -> Vec<Dcsr<u64>> {
        vec![
            dcsr(&[(1, 1, 10), (5, 2, 1), (5, 9, 2)]),
            dcsr(&[(5, 2, 100), (5, 3, 3), (900_000_000, 0, 7)]),
            dcsr(&[(0, 4, 4), (5, 9, 200)]),
        ]
    }

    fn pairwise_reference(levels: &[&Dcsr<u64>]) -> Dcsr<u64> {
        let mut acc = Dcsr::new(levels[0].nrows(), levels[0].ncols());
        for d in levels {
            acc = acc.merge(d, Plus).unwrap();
        }
        acc
    }

    #[test]
    fn merge_levels_matches_pairwise_merge() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let merged = merge_levels(1 << 40, 1 << 40, &levels, Plus).unwrap();
        merged.check_invariants().unwrap();
        assert_eq!(merged, pairwise_reference(&levels));
        assert_eq!(merged.get(5, 2), Some(101));
        assert_eq!(merged.get(5, 9), Some(202));
    }

    #[test]
    fn merge_levels_empty_and_single() {
        let merged = merge_levels::<u64, _>(10, 10, &[], Plus).unwrap();
        assert!(merged.is_empty());
        let a = dcsr(&[(1, 1, 1), (2, 2, 2)]);
        let merged = merge_levels(1 << 40, 1 << 40, &[&a], Plus).unwrap();
        assert_eq!(merged, a);
        let empty = Dcsr::<u64>::new(1 << 40, 1 << 40);
        let merged = merge_levels(1 << 40, 1 << 40, &[&empty, &a, &empty], Plus).unwrap();
        assert_eq!(merged, a);
    }

    #[test]
    fn merge_levels_dimension_mismatch() {
        let a = Dcsr::<u64>::new(10, 10);
        assert!(merge_levels(10, 11, &[&a], Plus).is_err());
    }

    #[test]
    fn merge_levels_other_ops() {
        let a = dcsr(&[(1, 1, 10)]);
        let b = dcsr(&[(1, 1, 3), (1, 2, 5)]);
        let merged = merge_levels(1 << 40, 1 << 40, &[&a, &b], Max).unwrap();
        assert_eq!(merged.get(1, 1), Some(10));
        assert_eq!(merged.get(1, 2), Some(5));
    }

    #[test]
    fn merged_nnz_counts_distinct_cells() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        assert_eq!(merged_nnz(&levels), pairwise_reference(&levels).nvals());
        assert_eq!(merged_nnz::<u64>(&[]), 0);
    }

    #[test]
    fn for_each_merged_is_sorted_row_major() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let mut got = Vec::new();
        for_each_merged(&levels, Plus, &mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<_> = pairwise_reference(&levels).iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn merged_point_and_row() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        assert_eq!(merged_point(&levels, 5, 2, Plus), Some(101));
        assert_eq!(merged_point(&levels, 5, 7, Plus), None);
        let mut row = Vec::new();
        merged_row_into(&levels, 5, Plus, &mut row);
        assert_eq!(row, vec![(2, 101), (3, 3), (9, 202)]);
        merged_row_into(&levels, 123, Plus, &mut row);
        assert!(row.is_empty());
        assert_eq!(merged_row_degree(&levels, 5), 3);
        assert_eq!(merged_row_degree(&levels, 1), 1);
        assert_eq!(merged_row_degree(&levels, 123), 0);
        assert_eq!(merged_row_reduce(&levels, 5, Plus), Some(306));
        assert_eq!(merged_row_reduce(&levels, 123, Plus), None);
    }

    #[test]
    fn merged_top_k_orders_by_degree_then_row() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        // Degrees: row 5 -> 3, rows 0, 1, 900_000_000 -> 1 each.
        let top = merged_top_k(&levels, 3);
        assert_eq!(top, vec![(5, 3), (0, 1), (1, 1)]);
        let all = merged_top_k(&levels, 100);
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], (900_000_000, 1));
        assert!(merged_top_k(&levels, 0).is_empty());
    }

    #[test]
    fn merged_row_range_skips_and_stops() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let reference = pairwise_reference(&levels);
        for (lo, hi) in [
            (0u64, u64::MAX),
            (1, 6),
            (5, 6),
            (6, 900_000_001),
            (2, 2),
            (7, 3),
            (1_000_000_000, u64::MAX),
        ] {
            let mut got = Vec::new();
            merged_row_range(&levels, lo, hi, Plus, &mut |r, c, v| got.push((r, c, v)));
            let expect: Vec<_> = reference
                .iter()
                .filter(|&(r, _, _)| r >= lo && r < hi)
                .collect();
            assert_eq!(got, expect, "range {lo}..{hi}");
        }
        let mut none = Vec::new();
        merged_row_range::<u64, _>(&[], 0, 10, Plus, &mut |r, c, v| none.push((r, c, v)));
        assert!(none.is_empty());
    }

    #[test]
    fn merged_top_k_with_reuses_scratch() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let mut scratch = TopKScratch::default();
        let first = merged_top_k_with(&levels, 3, &mut scratch);
        assert_eq!(first, merged_top_k(&levels, 3));
        // Second call (different k) through the same scratch stays correct.
        let second = merged_top_k_with(&levels, 100, &mut scratch);
        assert_eq!(second, merged_top_k(&levels, 100));
        assert!(merged_top_k_with(&levels, 0, &mut scratch).is_empty());
    }

    #[test]
    fn merged_col_kernels_match_transposed_reference() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let reference = pairwise_reference(&levels);
        // Column 2 is stored by rows 5 (two levels: 1 + 100) only; column 9
        // by row 5 (two levels); column 4 by row 0.
        let mut col = Vec::new();
        merged_col_into(&levels, 2, Plus, &mut col);
        assert_eq!(col, vec![(5, 101)]);
        merged_col_into(&levels, 9, Plus, &mut col);
        assert_eq!(col, vec![(5, 202)]);
        merged_col_into(&levels, 77, Plus, &mut col);
        assert!(col.is_empty());
        assert_eq!(merged_col_degree(&levels, 2), 1);
        assert_eq!(merged_col_degree(&levels, 77), 0);
        assert_eq!(merged_col_reduce(&levels, 2, Plus), Some(101));
        assert_eq!(merged_col_reduce(&levels, 77, Plus), None);
        // Exhaustive check against the materialised reference, per column.
        let mut by_col: std::collections::BTreeMap<u64, Vec<(u64, u64)>> = Default::default();
        for (r, c, v) in reference.iter() {
            by_col.entry(c).or_default().push((r, v));
        }
        for (&c, expect) in &by_col {
            merged_col_into(&levels, c, Plus, &mut col);
            assert_eq!(&col, expect, "column {c}");
            assert_eq!(merged_col_degree(&levels, c), expect.len());
            assert_eq!(
                merged_col_reduce(&levels, c, Plus),
                Some(expect.iter().map(|&(_, v)| v).sum())
            );
        }
        let degs = merged_col_degrees(&levels);
        for (&c, expect) in &by_col {
            assert_eq!(degs.get(&c), Some(&(expect.len() as u64)));
        }
        assert_eq!(degs.len(), by_col.len());
    }

    #[test]
    fn merged_in_top_k_and_histogram_order() {
        // Columns: 7 appears in rows 1, 2, 3; 8 in rows 1, 2; 9 in row 9.
        let a = dcsr(&[(1, 7, 1), (1, 8, 1), (2, 7, 1)]);
        let b = dcsr(&[(2, 8, 1), (3, 7, 1), (9, 9, 1)]);
        let levels = [&a, &b];
        assert_eq!(merged_in_top_k(&levels, 2), vec![(7, 3), (8, 2)]);
        assert_eq!(merged_in_top_k(&levels, 10), vec![(7, 3), (8, 2), (9, 1)]);
        assert!(merged_in_top_k(&levels, 0).is_empty());
        let hist = merged_in_degree_histogram(&levels);
        assert_eq!(hist.get(&3), Some(&1));
        assert_eq!(hist.get(&2), Some(&1));
        assert_eq!(hist.get(&1), Some(&1));
    }

    #[test]
    fn merged_col_range_is_column_major() {
        let owned = sample_levels();
        let levels: Vec<&Dcsr<u64>> = owned.iter().collect();
        let reference = pairwise_reference(&levels);
        for (lo, hi) in [(0u64, u64::MAX), (2, 4), (9, 10), (5, 5), (100, 2)] {
            let mut got = Vec::new();
            merged_col_range(&levels, lo, hi, Plus, &mut |r, c, v| got.push((r, c, v)));
            let mut expect: Vec<_> = reference
                .iter()
                .filter(|&(_, c, _)| c >= lo && c < hi)
                .collect();
            expect.sort_by_key(|&(r, c, _)| (c, r));
            assert_eq!(got, expect, "cols {lo}..{hi}");
        }
    }

    #[test]
    fn cursor_scratch_reuse_across_rows() {
        // Many rows with collisions: exercises the take/restore scratch path.
        let a = dcsr(&(0..100u64).map(|i| (i, i % 7, 1)).collect::<Vec<_>>());
        let b = dcsr(&(0..100u64).map(|i| (i, (i + 1) % 7, 2)).collect::<Vec<_>>());
        let levels = [&a, &b];
        let merged = merge_levels(1 << 40, 1 << 40, &levels, Plus).unwrap();
        assert_eq!(merged, pairwise_reference(&levels));
        assert_eq!(merged_nnz(&levels), merged.nvals());
    }
}
