//! Index types and dimension validation helpers.
//!
//! GraphBLAS matrices used for IP traffic analysis are indexed by the full
//! IPv4 (`2^32`) or IPv6 (`2^64`) address space, so indices are `u64`
//! throughout.  Storage cost is proportional to the number of *stored*
//! entries, never to the dimensions.

use crate::error::{GrbError, GrbResult};

/// Row/column index type.  Matches `GrB_Index` in the C API.
pub type Index = u64;

/// The largest representable dimension (`2^64 - 1` would overflow internal
/// arithmetic in a few places, so like SuiteSparse we cap at `2^60`).
pub const MAX_DIM: Index = 1 << 60;

/// Validate that a matrix dimension pair is acceptable.
///
/// Dimensions must be non-zero and no larger than [`MAX_DIM`].
pub fn validate_dims(nrows: Index, ncols: Index) -> GrbResult<()> {
    if nrows == 0 || ncols == 0 {
        return Err(GrbError::InvalidValue(format!(
            "matrix dimensions must be non-zero, got {nrows} x {ncols}"
        )));
    }
    if nrows > MAX_DIM || ncols > MAX_DIM {
        return Err(GrbError::InvalidValue(format!(
            "matrix dimensions must be <= 2^60, got {nrows} x {ncols}"
        )));
    }
    Ok(())
}

/// Validate that `index < dim`.
pub fn validate_index(index: Index, dim: Index) -> GrbResult<()> {
    if index >= dim {
        Err(GrbError::IndexOutOfBounds { index, dim })
    } else {
        Ok(())
    }
}

/// A half-open index range `[start, end)` used by extract/assign operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange {
    /// Inclusive start.
    pub start: Index,
    /// Exclusive end.
    pub end: Index,
}

impl IndexRange {
    /// Construct a new range, validating that `start <= end`.
    pub fn new(start: Index, end: Index) -> GrbResult<Self> {
        if start > end {
            return Err(GrbError::InvalidValue(format!(
                "range start {start} exceeds end {end}"
            )));
        }
        Ok(Self { start, end })
    }

    /// The whole axis `[0, dim)`.
    pub fn all(dim: Index) -> Self {
        Self { start: 0, end: dim }
    }

    /// Number of indices covered by the range.
    pub fn len(&self) -> Index {
        self.end - self.start
    }

    /// True when the range covers no indices.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `i` falls inside the range.
    pub fn contains(&self, i: Index) -> bool {
        i >= self.start && i < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_zero_rejected() {
        assert!(validate_dims(0, 10).is_err());
        assert!(validate_dims(10, 0).is_err());
        assert!(validate_dims(0, 0).is_err());
    }

    #[test]
    fn dims_huge_accepted_up_to_cap() {
        assert!(validate_dims(1 << 32, 1 << 32).is_ok());
        assert!(validate_dims(MAX_DIM, MAX_DIM).is_ok());
        assert!(validate_dims(MAX_DIM + 1, 2).is_err());
    }

    #[test]
    fn index_validation() {
        assert!(validate_index(0, 1).is_ok());
        assert!(validate_index(41, 42).is_ok());
        assert!(validate_index(42, 42).is_err());
        match validate_index(99, 10).unwrap_err() {
            GrbError::IndexOutOfBounds { index, dim } => {
                assert_eq!(index, 99);
                assert_eq!(dim, 10);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ranges() {
        let r = IndexRange::new(3, 7).unwrap();
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(3));
        assert!(r.contains(6));
        assert!(!r.contains(7));
        assert!(!r.contains(2));

        let all = IndexRange::all(100);
        assert_eq!(all.len(), 100);
        assert!(IndexRange::new(5, 4).is_err());
        assert!(IndexRange::new(4, 4).unwrap().is_empty());
    }
}
