//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! (small) subset of the `rand` 0.8 API the workspace uses, under the same
//! module paths: [`Rng`], [`SeedableRng`], and [`rngs::StdRng`].  The
//! generator is xoshiro256++ seeded through SplitMix64 — a different stream
//! from upstream `StdRng` (ChaCha12), but every workload generator in this
//! workspace only promises determinism *given a seed*, which holds here.
//!
//! Replace the `rand` entry in the workspace `Cargo.toml` with the real
//! crates.io dependency to switch back; no source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A value that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (same construction as
    /// upstream `rand`).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// An integer type that can be drawn uniformly from a range without modulo
/// bias (widening-multiply rejection, Lemire 2019).
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; `high > low` must hold.
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; `high >= low` must hold.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

fn sample_u64_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply-and-reject: unbiased and branch-light.
    let zone = span.wrapping_neg() % span; // number of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u64, usize, u32);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The subset of `rand::Rng` used by the workload generators.
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from the standard distribution
    /// (`f64` uniform in `[0, 1)`, integers uniform over their domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna 2018).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&z));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits));
    }
}
