//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the measurement API surface the `hyperstream-bench` benches use
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`).  Instead of criterion's full
//! statistical pipeline it runs a warm-up iteration plus a bounded number of
//! timed samples and prints median time and throughput per benchmark — good
//! enough to rank configurations and spot large regressions offline.
//!
//! Running a bench binary with `--test` (as `cargo test --benches` does)
//! executes every benchmark exactly once for a fast smoke check.  Swap the
//! workspace `Cargo.toml` entry for the real crate to get full statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function part and a parameter part (`function/param`).
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under timing; handed to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not timed).
        black_box(routine());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.elapsed = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    /// Run one benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.effective_samples(),
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.elapsed);
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op hook).
    pub fn finish(&mut self) {}

    fn effective_samples(&self) -> usize {
        if self.criterion.test_mode {
            1
        } else {
            // Bound the sample count: this harness is for offline ranking,
            // not publication-grade statistics.
            self.sample_size.min(10)
        }
    }

    fn report(&self, id: &str, median: Duration) {
        let secs = median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                format!("  {:>12.3e} elem/s", n as f64 / secs)
            }
            Some(Throughput::Bytes(n)) if secs > 0.0 => {
                format!("  {:>12.3e} B/s", n as f64 / secs)
            }
            _ => String::new(),
        };
        println!(
            "bench {:<50} {:>12.3?}/iter{rate}",
            format!("{}/{id}", self.name),
            median
        );
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // `cargo test --benches` runs bench binaries with `--test`.
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Collect benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from benchmark groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat_smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0u64..100).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(smoke, trivial_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
