//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with [`Strategy::prop_map`], range and
//! tuple strategies, [`prop::collection::vec`], the [`proptest!`] macro, and
//! the `prop_assert*` macros.  Differences from upstream:
//!
//! * **No shrinking** — a failing case reports its case index; cases are
//!   deterministic per test (the RNG is seeded from the test name), so a
//!   failure is reproducible by re-running the test.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which is equivalent observable behaviour here.
//!
//! Swap the workspace `Cargo.toml` entry for the real crate to restore
//! shrinking; the test source is compatible with both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically (tests derive the seed from their name).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Stable FNV-1a hash used to derive per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (no shrinking through the map).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u64, usize, u32, u8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A strategy producing `Vec`s of values from `element`, with a
        /// length drawn from `size` (any `usize` strategy, e.g. `0..300`).
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        /// Generate vectors of `element` values with lengths from `size`.
        pub fn vec<S: Strategy, L: Strategy<Value = usize>>(
            element: S,
            size: L,
        ) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-test configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Define property tests.  Mirrors `proptest::proptest!`.
///
/// The `#[test]` attributes inside the macro are expanded into real unit
/// tests when used from test code; the doctest below only checks that the
/// macro expands, because doctests cannot register (or call) unit tests.
///
/// ```
/// use hyperstream_proptest_compat::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::seed_from_u64(seed ^ (case as u64) << 1);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = || { $body };
                if let Err(payload) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; re-run to reproduce)",
                        case + 1, config.cases, stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// One-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let u = (0usize..=3).generate(&mut rng);
            assert!(u <= 3);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = prop::collection::vec((0u64..100, 0u64..100), 0usize..50);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 50);
            assert!(v.iter().all(|&(a, b)| a < 100 && b < 100));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_smoke(xs in prop::collection::vec(0u64..5, 0usize..20), k in 1u64..4) {
            let total: u64 = xs.iter().sum();
            prop_assert!(total <= 5 * xs.len() as u64);
            prop_assert_eq!(k.min(4), k);
            prop_assert_ne!(k, 0);
        }
    }
}
