//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s panic-free API
//! (`lock()` returns the guard directly, poisoning is ignored) backed by the
//! corresponding `std::sync` primitives.  Swap the workspace `Cargo.toml`
//! entry for the real crate to get the faster implementation; no source
//! changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s unpoisonable interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s unpoisonable interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
