//! Published update rates of the systems plotted in Fig. 2.
//!
//! The paper's figure compares the hierarchical GraphBLAS result against
//! *previously published* cluster-scale results (its references [19], [25],
//! [26], [27], [28] and the public Oracle TPC-C record).  Those systems are
//! not re-run; their curves are reference lines.  This module encodes each
//! line as an anchor point (rate at a given server count) and a scaling
//! exponent, so the `fig2` harness can redraw them at any x-axis position.
//!
//! The anchor values are taken from the cited papers' headline numbers and
//! the figure itself; because Fig. 2 is log–log, the qualitative ordering —
//! which is what the reproduction must preserve — is insensitive to modest
//! errors in the anchors.

/// Identifier of a published reference system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PublishedSystem {
    /// Hierarchical D4M associative arrays (Kepner et al. HPEC 2019, ref [24]/[19]).
    HierarchicalD4m,
    /// D4M on Apache Accumulo (Kepner et al. HPEC 2014, ref [25]).
    AccumuloD4m,
    /// SciDB ingest via D4M (Samsi et al. HPEC 2016, ref [26]).
    SciDbD4m,
    /// Apache Accumulo continuous ingest benchmark (Sen et al. 2013, ref [27]).
    Accumulo,
    /// Oracle TPC-C published record (single large SMP system).
    OracleTpcC,
    /// CrateDB ingest benchmark (ref [28]).
    CrateDb,
}

/// A reference line: `rate(servers) = rate_at_anchor * (servers / anchor_servers)^exponent`,
/// clamped to the server range the original result covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedRate {
    /// Which system.
    pub system: PublishedSystem,
    /// Human-readable label used in reports.
    pub label: &'static str,
    /// Server count of the headline result.
    pub anchor_servers: u64,
    /// Updates (inserts) per second of the headline result.
    pub rate_at_anchor: f64,
    /// Weak-scaling exponent (1.0 = perfectly linear in servers).
    pub exponent: f64,
    /// Largest server count the published result extends to.
    pub max_servers: u64,
}

impl PublishedRate {
    /// Rate at an arbitrary server count (extrapolating with the published
    /// scaling exponent; callers should respect [`PublishedRate::max_servers`]
    /// when drawing).
    pub fn rate_at(&self, servers: u64) -> f64 {
        let s = servers.max(1) as f64 / self.anchor_servers.max(1) as f64;
        self.rate_at_anchor * s.powf(self.exponent)
    }
}

/// All reference lines of Fig. 2.
pub const ALL_PUBLISHED: &[PublishedRate] = &[
    PublishedRate {
        system: PublishedSystem::HierarchicalD4m,
        label: "Hierarchical D4M",
        anchor_servers: 1100,
        rate_at_anchor: 1.9e9,
        exponent: 0.95,
        max_servers: 1100,
    },
    PublishedRate {
        system: PublishedSystem::AccumuloD4m,
        label: "Accumulo D4M",
        anchor_servers: 216,
        rate_at_anchor: 1.0e8,
        exponent: 0.9,
        max_servers: 216,
    },
    PublishedRate {
        system: PublishedSystem::SciDbD4m,
        label: "SciDB D4M",
        anchor_servers: 32,
        rate_at_anchor: 1.5e6,
        exponent: 0.85,
        max_servers: 64,
    },
    PublishedRate {
        system: PublishedSystem::Accumulo,
        label: "Accumulo",
        anchor_servers: 100,
        rate_at_anchor: 1.0e8,
        exponent: 0.9,
        max_servers: 300,
    },
    PublishedRate {
        system: PublishedSystem::OracleTpcC,
        label: "Oracle (TPC-C)",
        anchor_servers: 1,
        rate_at_anchor: 5.0e5,
        exponent: 0.7,
        max_servers: 30,
    },
    PublishedRate {
        system: PublishedSystem::CrateDb,
        label: "CrateDB",
        anchor_servers: 16,
        rate_at_anchor: 3.8e6,
        exponent: 0.9,
        max_servers: 60,
    },
];

/// Look up a reference line by system.
pub fn published(system: PublishedSystem) -> &'static PublishedRate {
    ALL_PUBLISHED
        .iter()
        .find(|r| r.system == system)
        .expect("every system has a published rate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_present() {
        use PublishedSystem::*;
        for s in [
            HierarchicalD4m,
            AccumuloD4m,
            SciDbD4m,
            Accumulo,
            OracleTpcC,
            CrateDb,
        ] {
            assert_eq!(published(s).system, s);
        }
        assert_eq!(ALL_PUBLISHED.len(), 6);
    }

    #[test]
    fn rates_scale_with_servers() {
        let d4m = published(PublishedSystem::HierarchicalD4m);
        assert!(d4m.rate_at(1100) > d4m.rate_at(100));
        assert!(d4m.rate_at(100) > d4m.rate_at(1));
        // Anchor reproduces the headline number.
        assert!((d4m.rate_at(1100) - 1.9e9).abs() / 1.9e9 < 1e-9);
    }

    #[test]
    fn ordering_matches_figure_at_common_scale() {
        // At 100 servers the figure orders: Hierarchical D4M above
        // Accumulo/Accumulo-D4M above CrateDB/SciDB above TPC-C.
        let at = |s: PublishedSystem| published(s).rate_at(100);
        assert!(at(PublishedSystem::HierarchicalD4m) > at(PublishedSystem::AccumuloD4m));
        assert!(at(PublishedSystem::AccumuloD4m) > at(PublishedSystem::SciDbD4m));
        assert!(at(PublishedSystem::AccumuloD4m) > at(PublishedSystem::CrateDb));
        assert!(at(PublishedSystem::CrateDb) > at(PublishedSystem::OracleTpcC));
    }

    #[test]
    fn hierarchical_d4m_below_paper_headline() {
        // The paper's own result (75e9 at 1100 servers) must exceed every
        // published reference at the same scale — that is the point of Fig. 2.
        for r in ALL_PUBLISHED {
            assert!(r.rate_at(1100) < 75e9, "{} too high", r.label);
        }
    }

    #[test]
    fn rate_at_handles_zero_servers() {
        let r = published(PublishedSystem::OracleTpcC);
        assert!(r.rate_at(0) > 0.0);
    }
}
