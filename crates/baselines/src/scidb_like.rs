//! SciDB-like chunked array store.
//!
//! SciDB stores n-dimensional arrays as fixed-size chunks; a streaming
//! insert must locate the owning chunk, place the cell inside the chunk's
//! sorted cell list, and periodically "redimension" (re-sort and merge)
//! chunks that received out-of-order appends.  The chunk bookkeeping gives
//! good scan performance but a per-insert cost far above an in-memory
//! pending-tuple append — which is where the SciDB-D4M curve of Fig. 2 sits.

use crate::store::{InsertRecord, StreamingStore};
use hyperstream_graphblas::index::MAX_DIM;
use hyperstream_graphblas::{Index, MatrixReader};
use std::collections::{BTreeMap, HashMap};

/// Default chunk edge length (cells per dimension).
pub const DEFAULT_CHUNK_DIM: u64 = 4096;

/// Number of unsorted appends a chunk tolerates before it is re-sorted.
const CHUNK_RESORT_THRESHOLD: usize = 1024;

#[derive(Debug, Clone, Default)]
struct Chunk {
    /// Sorted by (row, col).
    sorted: Vec<(u64, u64, u64)>,
    /// Recent appends not yet merged into `sorted`.
    unsorted: Vec<(u64, u64, u64)>,
}

impl Chunk {
    fn redimension(&mut self) {
        if self.unsorted.is_empty() {
            return;
        }
        self.sorted.append(&mut self.unsorted);
        self.sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Combine duplicates.
        let mut merged: Vec<(u64, u64, u64)> = Vec::with_capacity(self.sorted.len());
        for &(r, c, v) in &self.sorted {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        self.sorted = merged;
    }
}

/// An in-memory analogue of a SciDB array instance.
#[derive(Debug, Clone)]
pub struct ArrayStore {
    chunk_dim: u64,
    chunks: HashMap<(u64, u64), Chunk>,
    redimensions: u64,
}

impl ArrayStore {
    /// Create a store with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_dim(DEFAULT_CHUNK_DIM)
    }

    /// Create a store with an explicit chunk edge length.
    pub fn with_chunk_dim(chunk_dim: u64) -> Self {
        Self {
            chunk_dim: chunk_dim.max(1),
            chunks: HashMap::new(),
            redimensions: 0,
        }
    }

    fn chunk_coord(&self, row: u64, col: u64) -> (u64, u64) {
        (row / self.chunk_dim, col / self.chunk_dim)
    }

    /// Number of materialised chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Number of chunk redimension (re-sort) passes performed.
    pub fn redimensions(&self) -> u64 {
        self.redimensions
    }

    /// Value accumulated for a cell, if present (forces no redimension).
    pub fn get(&self, row: u64, col: u64) -> Option<u64> {
        let chunk = self.chunks.get(&self.chunk_coord(row, col))?;
        let mut acc: Option<u64> = None;
        if let Ok(i) = chunk
            .sorted
            .binary_search_by_key(&(row, col), |&(r, c, _)| (r, c))
        {
            acc = Some(chunk.sorted[i].2);
        }
        for &(r, c, v) in &chunk.unsorted {
            if r == row && c == col {
                acc = Some(acc.unwrap_or(0) + v);
            }
        }
        acc
    }
}

impl Default for ArrayStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStore for ArrayStore {
    fn name(&self) -> &'static str {
        "scidb-like"
    }

    fn insert_batch(&mut self, batch: &[InsertRecord]) {
        for rec in batch {
            let coord = self.chunk_coord(rec.row, rec.col);
            let chunk = self.chunks.entry(coord).or_default();
            chunk.unsorted.push((rec.row, rec.col, rec.value));
            if chunk.unsorted.len() >= CHUNK_RESORT_THRESHOLD {
                chunk.redimension();
                self.redimensions += 1;
            }
        }
    }

    fn flush(&mut self) {
        for chunk in self.chunks.values_mut() {
            if !chunk.unsorted.is_empty() {
                chunk.redimension();
                self.redimensions += 1;
            }
        }
    }

    fn ncells(&self) -> usize {
        let mut clone = self.clone();
        clone.flush();
        clone.chunks.values().map(|c| c.sorted.len()).sum()
    }

    fn total_weight(&self) -> u64 {
        self.chunks
            .values()
            .map(|c| {
                c.sorted.iter().map(|&(_, _, v)| v).sum::<u64>()
                    + c.unsorted.iter().map(|&(_, _, v)| v).sum::<u64>()
            })
            .sum()
    }
}

/// The array-store read path: a row extract visits every chunk in the
/// row's chunk band (binary range into each chunk's sorted cells plus a
/// scan of its unsorted tail), a full sweep redimensions first — the
/// chunk-wise organisation SciDB pays for good scans with.
impl MatrixReader<u64> for ArrayStore {
    fn reader_name(&self) -> &str {
        "scidb-like"
    }

    fn read_dims(&self) -> (Index, Index) {
        (MAX_DIM, MAX_DIM)
    }

    fn read_nnz(&mut self) -> usize {
        // Unlike `ncells()` (which must clone-and-flush behind `&self`),
        // the reader may redimension in place and count the sorted cells
        // directly.
        self.flush();
        self.chunks.values().map(|c| c.sorted.len()).sum()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<u64> {
        ArrayStore::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, u64)>) {
        let band = row / self.chunk_dim;
        let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
        for ((chunk_row, _), chunk) in &self.chunks {
            if *chunk_row != band {
                continue;
            }
            let start = chunk.sorted.partition_point(|&(r, _, _)| r < row);
            for &(r, c, v) in &chunk.sorted[start..] {
                if r != row {
                    break;
                }
                *acc.entry(c).or_insert(0) += v;
            }
            for &(r, c, v) in &chunk.unsorted {
                if r == row {
                    *acc.entry(c).or_insert(0) += v;
                }
            }
        }
        out.clear();
        out.extend(acc);
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, u64)) {
        // A full scan redimensions in-flight appends first (the real
        // system's "consistent view" step), then merges the chunk scans.
        self.flush();
        let mut cells: Vec<(u64, u64, u64)> = self
            .chunks
            .values()
            .flat_map(|c| c.sorted.iter().copied())
            .collect();
        cells.sort_unstable_by_key(|&(r, c, _)| (r, c));
        for (r, c, v) in cells {
            f(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_and_lookup() {
        let mut s = ArrayStore::new();
        s.insert_batch(&[
            InsertRecord::new(10, 20, 1),
            InsertRecord::new(10, 20, 2),
            InsertRecord::new(1 << 30, 5, 7),
        ]);
        s.flush();
        assert_eq!(s.get(10, 20), Some(3));
        assert_eq!(s.get(1 << 30, 5), Some(7));
        assert_eq!(s.get(0, 0), None);
        assert_eq!(s.ncells(), 2);
        assert_eq!(s.total_weight(), 10);
    }

    #[test]
    fn chunking_places_nearby_cells_together() {
        let mut s = ArrayStore::with_chunk_dim(100);
        s.insert_batch(&[
            InsertRecord::new(5, 5, 1),
            InsertRecord::new(50, 50, 1), // same chunk (0,0)
            InsertRecord::new(150, 5, 1), // chunk (1,0)
        ]);
        assert_eq!(s.chunk_count(), 2);
    }

    #[test]
    fn redimension_triggered_by_many_appends() {
        let mut s = ArrayStore::with_chunk_dim(1 << 20);
        let batch: Vec<InsertRecord> = (0..3000)
            .map(|i| InsertRecord::new(i % 500, (i * 7) % 500, 1))
            .collect();
        s.insert_batch(&batch);
        assert!(s.redimensions() >= 2);
        s.flush();
        assert_eq!(s.total_weight(), 3000);
    }

    #[test]
    fn unflushed_reads_still_correct() {
        let mut s = ArrayStore::new();
        s.insert_batch(&[InsertRecord::new(1, 1, 4)]);
        // Not flushed: value lives in the unsorted tail.
        assert_eq!(s.get(1, 1), Some(4));
        assert_eq!(s.total_weight(), 4);
    }

    #[test]
    fn ncells_counts_distinct_after_merge() {
        let mut s = ArrayStore::new();
        for _ in 0..10 {
            s.insert_batch(&[InsertRecord::new(3, 3, 1)]);
        }
        assert_eq!(s.ncells(), 1);
        assert_eq!(s.total_weight(), 10);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ArrayStore::new().name(), "scidb-like");
    }

    #[test]
    fn reader_visits_chunk_band() {
        // Chunk dim 100: row 50's cells land in chunk columns 0 and 1;
        // leave some appends unflushed to exercise the unsorted-tail scan.
        let mut s = ArrayStore::with_chunk_dim(100);
        s.insert_batch(&[
            InsertRecord::new(50, 10, 1),
            InsertRecord::new(50, 150, 2),
            InsertRecord::new(51, 10, 9),
        ]);
        let mut row = Vec::new();
        s.read_row(50, &mut row);
        assert_eq!(row, vec![(10, 1), (150, 2)]);
        assert_eq!(s.read_get(50, 150), Some(2));
        assert_eq!(s.read_nnz(), 3);
        assert_eq!(s.read_row_degree(50), 2);
        let mut entries = Vec::new();
        s.read_entries(&mut |r, c, v| entries.push((r, c, v)));
        assert_eq!(entries, vec![(50, 10, 1), (50, 150, 2), (51, 10, 9)]);
        assert_eq!(s.read_top_k(2), vec![(50, 2), (51, 1)]);
    }
}
