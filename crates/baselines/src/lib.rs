//! # hyperstream-baselines
//!
//! Simplified in-memory analogues of the database systems whose published
//! insert rates appear as reference curves in the paper's Fig. 2, plus the
//! published-rate models themselves.
//!
//! ## Why analogues?
//!
//! The original comparison points are full distributed systems (Apache
//! Accumulo, SciDB, Oracle running TPC-C, CrateDB) that cannot be bundled
//! into a Rust reproduction.  What the comparison actually needs is the
//! *per-insert overhead structure* of each system class, because that is
//! what separates the curves by orders of magnitude:
//!
//! | Analogue | Models | Per-insert work |
//! |----------|--------|-----------------|
//! | [`TabletStore`] | Accumulo (and Accumulo-backed D4M) | WAL append + sorted memtable insert + periodic flush to immutable sorted runs |
//! | [`ArrayStore`]  | SciDB | chunk lookup + per-chunk sorted insert + periodic chunk "redimension" |
//! | [`RowStore`]    | Oracle TPC-C new-order | WAL + primary B-tree + two secondary indexes + row materialisation |
//! | [`DocStore`]    | CrateDB | shard routing + document append + two inverted-index postings + periodic refresh |
//!
//! Every analogue implements [`StreamingStore`], the same interface the
//! benchmark harness drives the GraphBLAS/D4M structures through, so Fig. 2
//! can be regenerated end-to-end on one machine.  The
//! [`published`] module additionally carries the per-server rates reported
//! in the papers the figure cites, used to draw the reference lines at
//! cluster scale (we obviously cannot run 1,000-node Accumulo locally).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulo_like;
pub mod cratedb_like;
pub mod published;
pub mod scidb_like;
pub mod store;
pub mod tpcc_like;

pub use accumulo_like::TabletStore;
pub use cratedb_like::DocStore;
pub use published::{PublishedRate, PublishedSystem, ALL_PUBLISHED};
pub use scidb_like::ArrayStore;
pub use store::{InsertRecord, StreamingStore};
pub use tpcc_like::RowStore;
