//! Accumulo-like tablet store.
//!
//! Models the ingest path of a BigTable-style sorted key–value store, which
//! is how both the "Accumulo" and "Accumulo D4M" curves of Fig. 2 ingest
//! traffic matrices: every cell becomes a string key
//! `row\x00column` whose mutation is (1) appended to a write-ahead log,
//! (2) inserted into a sorted in-memory memtable, and (3) periodically
//! flushed into an immutable sorted run (a minor compaction).  The string
//! encoding, WAL serialisation and ordered-map maintenance are exactly the
//! per-insert overheads that keep such systems two to four orders of
//! magnitude below in-memory GraphBLAS updates.

use crate::store::{InsertRecord, StreamingStore};
use hyperstream_graphblas::index::MAX_DIM;
use hyperstream_graphblas::{Index, MatrixReader};
use std::collections::BTreeMap;

/// Default memtable size (entries) before a minor compaction.
pub const DEFAULT_MEMTABLE_LIMIT: usize = 64 * 1024;

/// An in-memory analogue of an Accumulo tablet server.
#[derive(Debug, Clone)]
pub struct TabletStore {
    memtable: BTreeMap<Vec<u8>, u64>,
    /// Immutable sorted runs produced by minor compactions.
    runs: Vec<Vec<(Vec<u8>, u64)>>,
    wal_bytes: u64,
    memtable_limit: usize,
    minor_compactions: u64,
}

impl TabletStore {
    /// Create a store with the default memtable limit.
    pub fn new() -> Self {
        Self::with_memtable_limit(DEFAULT_MEMTABLE_LIMIT)
    }

    /// Create a store with an explicit memtable limit (entries).
    pub fn with_memtable_limit(limit: usize) -> Self {
        Self {
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            wal_bytes: 0,
            memtable_limit: limit.max(1),
            minor_compactions: 0,
        }
    }

    /// Encode a cell key the way D4M-on-Accumulo does: decimal strings for
    /// row and column, NUL separated.
    fn encode_key(row: u64, col: u64) -> Vec<u8> {
        let mut k = Vec::with_capacity(42);
        k.extend_from_slice(row.to_string().as_bytes());
        k.push(0);
        k.extend_from_slice(col.to_string().as_bytes());
        k
    }

    /// Number of minor compactions performed.
    pub fn minor_compactions(&self) -> u64 {
        self.minor_compactions
    }

    /// Bytes written to the simulated write-ahead log.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Number of immutable sorted runs currently on "disk".
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    fn minor_compact(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let run: Vec<(Vec<u8>, u64)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs.push(run);
        self.minor_compactions += 1;
    }

    /// Merge all runs and the memtable into a single view (a major
    /// compaction); used by the read-side accessors.
    fn merged(&self) -> BTreeMap<Vec<u8>, u64> {
        let mut merged = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run {
                *merged.entry(k.clone()).or_insert(0) += v;
            }
        }
        for (k, v) in &self.memtable {
            *merged.entry(k.clone()).or_insert(0) += v;
        }
        merged
    }

    /// Decode a `row\x00col` cell key back to numeric coordinates.
    fn decode_key(key: &[u8]) -> Option<(u64, u64)> {
        let sep = key.iter().position(|&b| b == 0)?;
        let row = std::str::from_utf8(&key[..sep]).ok()?.parse().ok()?;
        let col = std::str::from_utf8(&key[sep + 1..]).ok()?.parse().ok()?;
        Some((row, col))
    }

    /// The `row\x00` key prefix owning every cell of `row`.
    fn row_prefix(row: u64) -> Vec<u8> {
        let mut p = row.to_string().into_bytes();
        p.push(0);
        p
    }

    /// Value accumulated for a cell, if present.
    pub fn get(&self, row: u64, col: u64) -> Option<u64> {
        let key = Self::encode_key(row, col);
        let mut acc: Option<u64> = None;
        for run in &self.runs {
            if let Ok(i) = run.binary_search_by(|(k, _)| k.as_slice().cmp(key.as_slice())) {
                acc = Some(acc.unwrap_or(0) + run[i].1);
            }
        }
        if let Some(v) = self.memtable.get(&key) {
            acc = Some(acc.unwrap_or(0) + v);
        }
        acc
    }
}

impl Default for TabletStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStore for TabletStore {
    fn name(&self) -> &'static str {
        "accumulo-like"
    }

    fn insert_batch(&mut self, batch: &[InsertRecord]) {
        for rec in batch {
            let key = Self::encode_key(rec.row, rec.col);
            // WAL append: key + value serialisation.
            self.wal_bytes += key.len() as u64 + 8;
            *self.memtable.entry(key).or_insert(0) += rec.value;
            if self.memtable.len() >= self.memtable_limit {
                self.minor_compact();
            }
        }
    }

    fn flush(&mut self) {
        self.minor_compact();
    }

    fn ncells(&self) -> usize {
        self.merged().len()
    }

    fn total_weight(&self) -> u64 {
        self.merged().values().sum()
    }
}

/// The tablet-store read path: a row extract is a prefix range scan over
/// every sorted run plus the memtable (exactly an LSM read), a full sweep
/// is a major compaction's merge with the string keys decoded back to
/// numeric coordinates and re-sorted numerically (decimal order is not
/// numeric order — the decode cost stays on the measured path, as the D4M
/// string-key comparison intends).
impl MatrixReader<u64> for TabletStore {
    fn reader_name(&self) -> &str {
        "accumulo-like"
    }

    fn read_dims(&self) -> (Index, Index) {
        (MAX_DIM, MAX_DIM)
    }

    fn read_nnz(&mut self) -> usize {
        self.ncells()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<u64> {
        TabletStore::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, u64)>) {
        let prefix = Self::row_prefix(row);
        let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
        for run in &self.runs {
            let start = run.partition_point(|(k, _)| k.as_slice() < prefix.as_slice());
            for (k, v) in &run[start..] {
                if !k.starts_with(&prefix) {
                    break;
                }
                if let Some((_, c)) = Self::decode_key(k) {
                    *acc.entry(c).or_insert(0) += v;
                }
            }
        }
        for (k, v) in self.memtable.range(prefix.clone()..) {
            if !k.starts_with(&prefix) {
                break;
            }
            if let Some((_, c)) = Self::decode_key(k) {
                *acc.entry(c).or_insert(0) += v;
            }
        }
        out.clear();
        out.extend(acc);
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, u64)) {
        let mut cells: Vec<(u64, u64, u64)> = self
            .merged()
            .into_iter()
            .filter_map(|(k, v)| Self::decode_key(&k).map(|(r, c)| (r, c, v)))
            .collect();
        cells.sort_unstable_by_key(|&(r, c, _)| (r, c));
        for (r, c, v) in cells {
            f(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_accumulate() {
        let mut t = TabletStore::new();
        t.insert_batch(&[
            InsertRecord::new(1, 2, 5),
            InsertRecord::new(1, 2, 3),
            InsertRecord::new(9, 9, 1),
        ]);
        assert_eq!(t.get(1, 2), Some(8));
        assert_eq!(t.get(9, 9), Some(1));
        assert_eq!(t.get(2, 1), None);
        assert_eq!(t.ncells(), 2);
        assert_eq!(t.total_weight(), 9);
        assert!(t.wal_bytes() > 0);
    }

    #[test]
    fn memtable_limit_triggers_compaction() {
        let mut t = TabletStore::with_memtable_limit(10);
        let batch: Vec<InsertRecord> = (0..100).map(|i| InsertRecord::new(i, i, 1)).collect();
        t.insert_batch(&batch);
        assert!(t.minor_compactions() >= 9);
        assert!(t.run_count() >= 9);
        assert_eq!(t.ncells(), 100);
        assert_eq!(t.total_weight(), 100);
    }

    #[test]
    fn values_accumulate_across_runs() {
        let mut t = TabletStore::with_memtable_limit(2);
        // Same cell touched in several different runs.
        for _ in 0..5 {
            t.insert_batch(&[InsertRecord::new(7, 7, 1), InsertRecord::new(8, 8, 1)]);
        }
        t.flush();
        assert_eq!(t.get(7, 7), Some(5));
        assert_eq!(t.total_weight(), 10);
        assert_eq!(t.ncells(), 2);
    }

    #[test]
    fn flush_empties_memtable_idempotently() {
        let mut t = TabletStore::new();
        t.insert_batch(&[InsertRecord::new(1, 1, 1)]);
        t.flush();
        let runs = t.run_count();
        t.flush(); // nothing to do
        assert_eq!(t.run_count(), runs);
        assert_eq!(t.ncells(), 1);
    }

    #[test]
    fn key_encoding_distinguishes_cells() {
        // (1, 23) must not collide with (12, 3).
        let mut t = TabletStore::new();
        t.insert_batch(&[InsertRecord::new(1, 23, 1), InsertRecord::new(12, 3, 2)]);
        assert_eq!(t.get(1, 23), Some(1));
        assert_eq!(t.get(12, 3), Some(2));
        assert_eq!(t.ncells(), 2);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(TabletStore::new().name(), "accumulo-like");
    }

    #[test]
    fn reader_scans_runs_and_memtable() {
        // Tiny memtable: the row's cells spread across several runs plus
        // the live memtable, and keys whose decimal order differs from
        // numeric order ((9, ...) sorts after (12, ...) numerically).
        let mut t = TabletStore::with_memtable_limit(2);
        t.insert_batch(&[
            InsertRecord::new(12, 3, 1),
            InsertRecord::new(12, 40, 2),
            InsertRecord::new(9, 1, 5),
            InsertRecord::new(12, 3, 7),
        ]);
        let mut row = Vec::new();
        t.read_row(12, &mut row);
        assert_eq!(row, vec![(3, 8), (40, 2)]);
        t.read_row(1, &mut row);
        assert!(row.is_empty());
        assert_eq!(t.read_get(12, 3), Some(8));
        assert_eq!(t.read_nnz(), 3);
        assert_eq!(t.read_row_degree(12), 2);
        assert_eq!(t.read_row_reduce(12), Some(10));
        let mut entries = Vec::new();
        t.read_entries(&mut |r, c, v| entries.push((r, c, v)));
        assert_eq!(entries, vec![(9, 1, 5), (12, 3, 8), (12, 40, 2)]);
        assert_eq!(t.read_top_k(1), vec![(12, 2)]);
    }
}
