//! CrateDB-like sharded document store.
//!
//! CrateDB ingests rows as documents routed to shards, appends them to a
//! per-shard segment and maintains inverted indexes on the indexed columns;
//! visibility requires a periodic refresh that seals the in-flight segment.
//! The analogue reproduces that shape: hash routing, per-shard append-only
//! segments, two posting-list indexes, and refresh.

use crate::store::{InsertRecord, StreamingStore};
use hyperstream_graphblas::index::MAX_DIM;
use hyperstream_graphblas::{Index, MatrixReader};
use std::collections::{BTreeMap, HashMap};

/// Default number of shards (CrateDB's ingest benchmark used a handful of
/// shards per node).
pub const DEFAULT_SHARDS: usize = 8;

/// Documents accumulated in a shard before an automatic refresh.
const AUTO_REFRESH_DOCS: usize = 16 * 1024;

#[derive(Debug, Clone, Default)]
struct Shard {
    /// Sealed documents (visible to search).
    sealed: Vec<InsertRecord>,
    /// In-flight documents awaiting refresh.
    in_flight: Vec<InsertRecord>,
    /// Posting lists: row term -> document ids, col term -> document ids.
    row_index: HashMap<u64, Vec<usize>>,
    col_index: HashMap<u64, Vec<usize>>,
}

impl Shard {
    fn refresh(&mut self) {
        let base = self.sealed.len();
        for (i, doc) in self.in_flight.drain(..).enumerate() {
            let doc_id = base + i;
            self.row_index.entry(doc.row).or_default().push(doc_id);
            self.col_index.entry(doc.col).or_default().push(doc_id);
            self.sealed.push(doc);
        }
    }
}

/// An in-memory analogue of a CrateDB table.
#[derive(Debug, Clone)]
pub struct DocStore {
    shards: Vec<Shard>,
    refreshes: u64,
}

impl DocStore {
    /// Create a store with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create a store with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: vec![Shard::default(); shards.max(1)],
            refreshes: 0,
        }
    }

    fn shard_for(&self, row: u64) -> usize {
        (row.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of refresh passes performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Total documents stored (sealed + in flight).
    pub fn doc_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.sealed.len() + s.in_flight.len())
            .sum()
    }

    /// Accumulated weight for a cell across all its documents (searches the
    /// inverted indexes of the owning shard; in-flight documents are not
    /// visible until refresh, as in the real system).
    pub fn get_visible(&self, row: u64, col: u64) -> Option<u64> {
        let shard = &self.shards[self.shard_for(row)];
        let row_docs = shard.row_index.get(&row)?;
        let mut acc = None;
        for &doc_id in row_docs {
            let doc = &shard.sealed[doc_id];
            if doc.col == col {
                acc = Some(acc.unwrap_or(0) + doc.value);
            }
        }
        acc
    }
}

impl Default for DocStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStore for DocStore {
    fn name(&self) -> &'static str {
        "cratedb-like"
    }

    fn insert_batch(&mut self, batch: &[InsertRecord]) {
        for rec in batch {
            let idx = self.shard_for(rec.row);
            let shard = &mut self.shards[idx];
            shard.in_flight.push(*rec);
            if shard.in_flight.len() >= AUTO_REFRESH_DOCS {
                shard.refresh();
                self.refreshes += 1;
            }
        }
    }

    fn flush(&mut self) {
        for shard in &mut self.shards {
            if !shard.in_flight.is_empty() {
                shard.refresh();
                self.refreshes += 1;
            }
        }
    }

    fn ncells(&self) -> usize {
        // Distinct (row, col) pairs across all documents.
        let mut cells = std::collections::HashSet::new();
        for shard in &self.shards {
            for doc in shard.sealed.iter().chain(&shard.in_flight) {
                cells.insert((doc.row, doc.col));
            }
        }
        cells.len()
    }

    fn total_weight(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.sealed.iter().map(|d| d.value).sum::<u64>()
                    + s.in_flight.iter().map(|d| d.value).sum::<u64>()
            })
            .sum()
    }
}

/// The document-store read path: every query refreshes first (seals the
/// in-flight segments — searches only see refreshed documents, as in the
/// real system), then answers from the posting lists.  A row extract walks
/// the owning shard's row posting list; a full sweep merges every shard's
/// documents.
impl MatrixReader<u64> for DocStore {
    fn reader_name(&self) -> &str {
        "cratedb-like"
    }

    fn read_dims(&self) -> (Index, Index) {
        (MAX_DIM, MAX_DIM)
    }

    fn read_nnz(&mut self) -> usize {
        self.ncells()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<u64> {
        StreamingStore::flush(self);
        self.get_visible(row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, u64)>) {
        StreamingStore::flush(self);
        out.clear();
        let shard = &self.shards[self.shard_for(row)];
        let Some(doc_ids) = shard.row_index.get(&row) else {
            return;
        };
        let mut acc: BTreeMap<u64, u64> = BTreeMap::new();
        for &doc_id in doc_ids {
            let doc = &shard.sealed[doc_id];
            *acc.entry(doc.col).or_insert(0) += doc.value;
        }
        out.extend(acc);
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, u64)) {
        StreamingStore::flush(self);
        let mut acc: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for shard in &self.shards {
            for doc in &shard.sealed {
                *acc.entry((doc.row, doc.col)).or_insert(0) += doc.value;
            }
        }
        for ((r, c), v) in acc {
            f(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_visible_after_flush() {
        let mut s = DocStore::new();
        s.insert_batch(&[InsertRecord::new(1, 2, 3), InsertRecord::new(1, 2, 4)]);
        // Not yet refreshed -> not visible through the index.
        assert_eq!(s.get_visible(1, 2), None);
        s.flush();
        assert_eq!(s.get_visible(1, 2), Some(7));
        assert_eq!(s.doc_count(), 2);
        assert_eq!(s.ncells(), 1);
        assert_eq!(s.total_weight(), 7);
    }

    #[test]
    fn sharding_spreads_rows() {
        let mut s = DocStore::with_shards(4);
        let batch: Vec<InsertRecord> = (0..4000).map(|i| InsertRecord::new(i, 0, 1)).collect();
        s.insert_batch(&batch);
        s.flush();
        let per_shard: Vec<usize> = s.shards.iter().map(|sh| sh.sealed.len()).collect();
        assert!(
            per_shard.iter().all(|&n| n > 500),
            "skewed shards {per_shard:?}"
        );
    }

    #[test]
    fn auto_refresh_on_large_ingest() {
        let mut s = DocStore::with_shards(1);
        let batch: Vec<InsertRecord> = (0..(AUTO_REFRESH_DOCS as u64 * 2))
            .map(|i| InsertRecord::new(i, i, 1))
            .collect();
        s.insert_batch(&batch);
        assert!(s.refreshes() >= 2);
    }

    #[test]
    fn weight_and_cells_count_duplicates_correctly() {
        let mut s = DocStore::new();
        for _ in 0..5 {
            s.insert_batch(&[InsertRecord::new(9, 9, 2)]);
        }
        s.flush();
        assert_eq!(s.total_weight(), 10);
        assert_eq!(s.ncells(), 1);
        assert_eq!(s.doc_count(), 5);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(DocStore::new().name(), "cratedb-like");
    }

    #[test]
    fn reader_refreshes_then_searches_postings() {
        let mut s = DocStore::with_shards(2);
        s.insert_batch(&[
            InsertRecord::new(7, 1, 2),
            InsertRecord::new(7, 1, 3),
            InsertRecord::new(7, 9, 1),
            InsertRecord::new(8, 1, 4),
        ]);
        // No explicit flush: the reader must refresh before searching.
        let mut row = Vec::new();
        s.read_row(7, &mut row);
        assert_eq!(row, vec![(1, 5), (9, 1)]);
        assert_eq!(s.read_get(7, 1), Some(5));
        assert_eq!(s.read_get(0, 0), None);
        assert_eq!(s.read_nnz(), 3);
        assert_eq!(s.read_row_degree(7), 2);
        assert_eq!(s.read_row_reduce(7), Some(6));
        let mut entries = Vec::new();
        s.read_entries(&mut |r, c, v| entries.push((r, c, v)));
        assert_eq!(entries, vec![(7, 1, 5), (7, 9, 1), (8, 1, 4)]);
        assert_eq!(s.read_top_k(1), vec![(7, 2)]);
    }
}
