//! TPC-C-like transactional row store.
//!
//! The Oracle TPC-C point in Fig. 2 represents a classical OLTP insert path:
//! each logical update is a transaction that appends a redo-log record,
//! materialises a full row, inserts it into the primary B-tree and updates
//! secondary indexes.  This analogue reproduces that work profile: redo
//! buffer, a primary `BTreeMap` keyed by `(row, col)`, and two secondary
//! indexes (by row and by column) maintained on every insert — which is why
//! its throughput sits at the bottom of the figure.

use crate::store::{InsertRecord, StreamingStore};
use hyperstream_graphblas::index::MAX_DIM;
use hyperstream_graphblas::{Index, MatrixReader};
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A materialised "row" of the transactional table (origin, destination,
/// accumulated weight, plus the padding a real row format carries).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    weight: u64,
    /// Simulated row padding: TPC-C rows are hundreds of bytes wide; the
    /// padding makes the memory traffic realistic for the analogue.
    _pad: [u8; 64],
}

/// An in-memory analogue of an OLTP row store running a TPC-C-style insert
/// workload.  A mutex guards the table to model the serialisation a real
/// transaction manager imposes on hot rows.
#[derive(Debug)]
pub struct RowStore {
    inner: Mutex<RowStoreInner>,
}

#[derive(Debug, Default)]
struct RowStoreInner {
    primary: BTreeMap<(u64, u64), Row>,
    by_row: BTreeMap<u64, u64>,
    by_col: BTreeMap<u64, u64>,
    redo_bytes: u64,
    transactions: u64,
}

impl RowStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(RowStoreInner::default()),
        }
    }

    /// Number of committed transactions (one per insert record).
    pub fn transactions(&self) -> u64 {
        self.inner.lock().transactions
    }

    /// Bytes appended to the simulated redo log.
    pub fn redo_bytes(&self) -> u64 {
        self.inner.lock().redo_bytes
    }

    /// Accumulated weight for a cell, if present.
    pub fn get(&self, row: u64, col: u64) -> Option<u64> {
        self.inner.lock().primary.get(&(row, col)).map(|r| r.weight)
    }

    /// Secondary-index lookup: total weight originating at `row`.
    pub fn weight_by_row(&self, row: u64) -> Option<u64> {
        self.inner.lock().by_row.get(&row).copied()
    }

    /// Secondary-index lookup: total weight arriving at `col`.
    pub fn weight_by_col(&self, col: u64) -> Option<u64> {
        self.inner.lock().by_col.get(&col).copied()
    }
}

impl Default for RowStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStore for RowStore {
    fn name(&self) -> &'static str {
        "tpcc-like"
    }

    fn insert_batch(&mut self, batch: &[InsertRecord]) {
        let mut inner = self.inner.lock();
        for rec in batch {
            // Redo log record: key + value + header.
            inner.redo_bytes += 16 + 8 + 24;
            inner
                .primary
                .entry((rec.row, rec.col))
                .and_modify(|r| r.weight += rec.value)
                .or_insert(Row {
                    weight: rec.value,
                    _pad: [0u8; 64],
                });
            *inner.by_row.entry(rec.row).or_insert(0) += rec.value;
            *inner.by_col.entry(rec.col).or_insert(0) += rec.value;
            inner.transactions += 1;
        }
    }

    fn flush(&mut self) {
        // Transactions commit synchronously; nothing deferred.
    }

    fn ncells(&self) -> usize {
        self.inner.lock().primary.len()
    }

    fn total_weight(&self) -> u64 {
        self.inner.lock().primary.values().map(|r| r.weight).sum()
    }
}

/// The OLTP read path: the primary B-tree is keyed by `(row, col)`, so a
/// row extract is a range scan, a full sweep is an index-order scan, and
/// the per-row reduction comes straight off the secondary index the insert
/// path maintains — each read takes the table latch, as transactions do.
impl MatrixReader<u64> for RowStore {
    fn reader_name(&self) -> &str {
        "tpcc-like"
    }

    fn read_dims(&self) -> (Index, Index) {
        (MAX_DIM, MAX_DIM)
    }

    fn read_nnz(&mut self) -> usize {
        self.ncells()
    }

    fn read_get(&mut self, row: Index, col: Index) -> Option<u64> {
        RowStore::get(self, row, col)
    }

    fn read_row(&mut self, row: Index, out: &mut Vec<(Index, u64)>) {
        out.clear();
        let inner = self.inner.lock();
        for (&(_, c), r) in inner.primary.range((row, 0)..=(row, u64::MAX)) {
            out.push((c, r.weight));
        }
    }

    fn read_row_reduce(&mut self, row: Index) -> Option<u64> {
        // Served by the secondary index the insert path already maintains.
        self.weight_by_row(row)
    }

    fn read_entries(&mut self, f: &mut dyn FnMut(Index, Index, u64)) {
        let inner = self.inner.lock();
        for (&(r, c), row) in &inner.primary {
            f(r, c, row.weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_maintain_all_indexes() {
        let mut s = RowStore::new();
        s.insert_batch(&[
            InsertRecord::new(1, 2, 5),
            InsertRecord::new(1, 3, 7),
            InsertRecord::new(4, 2, 1),
            InsertRecord::new(1, 2, 5),
        ]);
        assert_eq!(s.get(1, 2), Some(10));
        assert_eq!(s.weight_by_row(1), Some(17));
        assert_eq!(s.weight_by_col(2), Some(11));
        assert_eq!(s.ncells(), 3);
        assert_eq!(s.total_weight(), 18);
        assert_eq!(s.transactions(), 4);
        assert!(s.redo_bytes() > 0);
    }

    #[test]
    fn missing_lookups() {
        let s = RowStore::new();
        assert_eq!(s.get(1, 1), None);
        assert_eq!(s.weight_by_row(1), None);
        assert_eq!(s.weight_by_col(1), None);
        assert_eq!(s.ncells(), 0);
    }

    #[test]
    fn flush_is_noop() {
        let mut s = RowStore::new();
        s.insert_batch(&[InsertRecord::new(1, 1, 1)]);
        s.flush();
        assert_eq!(s.total_weight(), 1);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RowStore::new().name(), "tpcc-like");
    }

    #[test]
    fn reader_range_scans_primary_btree() {
        let mut s = RowStore::new();
        s.insert_batch(&[
            InsertRecord::new(1, 2, 5),
            InsertRecord::new(1, 3, 7),
            InsertRecord::new(4, 2, 1),
            InsertRecord::new(1, 2, 5),
        ]);
        let mut row = Vec::new();
        s.read_row(1, &mut row);
        assert_eq!(row, vec![(2, 10), (3, 7)]);
        s.read_row(9, &mut row);
        assert!(row.is_empty());
        // The reduce answer comes off the by-row secondary index.
        assert_eq!(s.read_row_reduce(1), Some(17));
        assert_eq!(s.read_row_reduce(9), None);
        assert_eq!(s.read_nnz(), 3);
        let mut entries = Vec::new();
        s.read_entries(&mut |r, c, v| entries.push((r, c, v)));
        assert_eq!(entries, vec![(1, 2, 10), (1, 3, 7), (4, 2, 1)]);
        assert_eq!(s.read_top_k(1), vec![(1, 2)]);
    }
}
