//! The common streaming-insert interface all baselines implement.

use hyperstream_graphblas::sink::check_tuple_lengths;
use hyperstream_graphblas::{GrbResult, Index, StreamingSink};

/// One streaming insert: an origin–destination update with a weight,
/// identical in shape to the GraphBLAS update so every system ingests the
/// same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertRecord {
    /// Row / origin identifier.
    pub row: u64,
    /// Column / destination identifier.
    pub col: u64,
    /// Update weight (accumulated under `+`).
    pub value: u64,
}

impl InsertRecord {
    /// Convenience constructor.
    pub fn new(row: u64, col: u64, value: u64) -> Self {
        Self { row, col, value }
    }
}

/// A system under test in the Fig. 2 comparison.
pub trait StreamingStore {
    /// Short system name used in reports ("accumulo-like", "tpcc-like", …).
    fn name(&self) -> &'static str;

    /// Ingest a batch of inserts.
    fn insert_batch(&mut self, batch: &[InsertRecord]);

    /// Complete any deferred work (flush memtables, refresh indexes).
    fn flush(&mut self);

    /// Number of distinct `(row, col)` cells stored after a flush.
    fn ncells(&self) -> usize;

    /// Total accumulated weight across all cells (used to verify that no
    /// system silently drops updates).
    fn total_weight(&self) -> u64;
}

/// Implement the workspace-wide [`StreamingSink`] interface for a baseline
/// store in terms of its [`StreamingStore`] methods, so the measurement
/// harness can drive database analogues and GraphBLAS matrices through one
/// generic call site.  (A blanket `impl<S: StreamingStore> StreamingSink for
/// S` would violate the orphan rule — `StreamingSink` lives in
/// `hyperstream-graphblas` — hence the macro.)
macro_rules! impl_streaming_sink_via_store {
    ($($store:ty),+ $(,)?) => {$(
        impl StreamingSink<u64> for $store {
            fn sink_name(&self) -> &str {
                StreamingStore::name(self)
            }

            fn insert(&mut self, row: Index, col: Index, val: u64) -> GrbResult<()> {
                StreamingStore::insert_batch(self, &[InsertRecord::new(row, col, val)]);
                Ok(())
            }

            fn insert_batch(
                &mut self,
                rows: &[Index],
                cols: &[Index],
                vals: &[u64],
            ) -> GrbResult<()> {
                check_tuple_lengths(rows, cols, vals)?;
                let records: Vec<InsertRecord> = (0..rows.len())
                    .map(|i| InsertRecord::new(rows[i], cols[i], vals[i]))
                    .collect();
                StreamingStore::insert_batch(self, &records);
                Ok(())
            }

            fn flush(&mut self) -> GrbResult<()> {
                StreamingStore::flush(self);
                Ok(())
            }

            fn nvals(&self) -> usize {
                self.ncells()
            }

            fn total_weight(&self) -> f64 {
                StreamingStore::total_weight(self) as f64
            }
        }
    )+};
}

impl_streaming_sink_via_store!(
    crate::accumulo_like::TabletStore,
    crate::cratedb_like::DocStore,
    crate::scidb_like::ArrayStore,
    crate::tpcc_like::RowStore,
);

#[cfg(test)]
mod tests {
    use super::*;
    use hyperstream_graphblas::StreamingSystem;

    #[test]
    fn every_store_implements_matrix_reader() {
        use crate::{ArrayStore, DocStore, RowStore, TabletStore};

        let mut systems: Vec<Box<dyn StreamingSystem<u64>>> = vec![
            Box::new(TabletStore::new()),
            Box::new(ArrayStore::new()),
            Box::new(RowStore::new()),
            Box::new(DocStore::new()),
        ];
        for sys in &mut systems {
            sys.insert(1, 2, 10).unwrap();
            sys.insert(1, 2, 5).unwrap();
            sys.insert_batch(&[1, 500], &[9, 600], &[7, 8]).unwrap();
            // No flush: readers answer mid-ingest.
            let name = sys.reader_name().to_string();
            assert_eq!(name, sys.sink_name());
            assert_eq!(sys.read_get(1, 2), Some(15), "{name}");
            assert_eq!(sys.read_nnz(), 3, "{name}");
            let mut row = Vec::new();
            sys.read_row(1, &mut row);
            assert_eq!(row, vec![(2, 15), (9, 7)], "{name}");
            assert_eq!(sys.read_row_degree(1), 2, "{name}");
            assert_eq!(sys.read_row_reduce(1), Some(22), "{name}");
            assert_eq!(sys.read_top_k(1), vec![(1, 2)], "{name}");
            let mut entries = Vec::new();
            sys.read_entries(&mut |r, c, v| entries.push((r, c, v)));
            assert_eq!(
                entries,
                vec![(1, 2, 15), (1, 9, 7), (500, 600, 8)],
                "{name}"
            );
        }
    }

    #[test]
    fn record_constructor() {
        let r = InsertRecord::new(1, 2, 3);
        assert_eq!(r.row, 1);
        assert_eq!(r.col, 2);
        assert_eq!(r.value, 3);
    }

    #[test]
    fn every_store_implements_streaming_sink() {
        use crate::{ArrayStore, DocStore, RowStore, TabletStore};

        let mut sinks: Vec<Box<dyn StreamingSink<u64>>> = vec![
            Box::new(TabletStore::new()),
            Box::new(ArrayStore::new()),
            Box::new(RowStore::new()),
            Box::new(DocStore::new()),
        ];
        for sink in &mut sinks {
            sink.insert(1, 2, 10).unwrap();
            sink.insert(1, 2, 5).unwrap();
            sink.insert_batch(&[3, 500], &[4, 600], &[7, 8]).unwrap();
            assert!(sink.insert_batch(&[1], &[1, 2], &[1]).is_err());
            sink.flush().unwrap();
            assert_eq!(sink.nvals(), 3, "{}", sink.sink_name());
            assert_eq!(sink.total_weight(), 30.0, "{}", sink.sink_name());
            assert!(!sink.sink_name().is_empty());
        }
    }
}
