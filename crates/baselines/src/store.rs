//! The common streaming-insert interface all baselines implement.

/// One streaming insert: an origin–destination update with a weight,
/// identical in shape to the GraphBLAS update so every system ingests the
/// same stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertRecord {
    /// Row / origin identifier.
    pub row: u64,
    /// Column / destination identifier.
    pub col: u64,
    /// Update weight (accumulated under `+`).
    pub value: u64,
}

impl InsertRecord {
    /// Convenience constructor.
    pub fn new(row: u64, col: u64, value: u64) -> Self {
        Self { row, col, value }
    }
}

/// A system under test in the Fig. 2 comparison.
pub trait StreamingStore {
    /// Short system name used in reports ("accumulo-like", "tpcc-like", …).
    fn name(&self) -> &'static str;

    /// Ingest a batch of inserts.
    fn insert_batch(&mut self, batch: &[InsertRecord]);

    /// Complete any deferred work (flush memtables, refresh indexes).
    fn flush(&mut self);

    /// Number of distinct `(row, col)` cells stored after a flush.
    fn ncells(&self) -> usize;

    /// Total accumulated weight across all cells (used to verify that no
    /// system silently drops updates).
    fn total_weight(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_constructor() {
        let r = InsertRecord::new(1, 2, 3);
        assert_eq!(r.row, 1);
        assert_eq!(r.col, 2);
        assert_eq!(r.value, 3);
    }
}
