//! Analytic model of a node's memory hierarchy.

/// One level of the memory hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryLevel {
    /// Human-readable name ("L1", "L2", "L3", "DRAM").
    pub name: String,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustainable bandwidth in GiB/s.
    pub bandwidth_gib_s: f64,
}

impl MemoryLevel {
    /// Construct a level.
    pub fn new(name: &str, capacity_bytes: u64, latency_ns: f64, bandwidth_gib_s: f64) -> Self {
        Self {
            name: name.to_string(),
            capacity_bytes,
            latency_ns,
            bandwidth_gib_s,
        }
    }

    /// Time in nanoseconds to stream `bytes` through this level
    /// (latency + bytes / bandwidth).
    pub fn stream_time_ns(&self, bytes: u64) -> f64 {
        let gib = self.bandwidth_gib_s * 1024.0 * 1024.0 * 1024.0;
        self.latency_ns + bytes as f64 / gib * 1e9
    }
}

/// An ordered memory hierarchy, fastest level first.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryHierarchy {
    levels: Vec<MemoryLevel>,
}

impl MemoryHierarchy {
    /// Build from an ordered list of levels (fastest first).
    ///
    /// # Panics
    /// Panics if levels are empty or capacities are not strictly increasing.
    pub fn new(levels: Vec<MemoryLevel>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        for w in levels.windows(2) {
            assert!(
                w[0].capacity_bytes < w[1].capacity_bytes,
                "levels must have strictly increasing capacity"
            );
        }
        Self { levels }
    }

    /// A model of the Xeon-class nodes used by the MIT SuperCloud
    /// (Intel Xeon Platinum 8260-era figures: 32 KiB L1d, 1 MiB L2,
    /// ~36 MiB shared L3, 192 GiB DRAM per node).
    pub fn xeon_node() -> Self {
        Self::new(vec![
            MemoryLevel::new("L1", 32 * 1024, 1.2, 200.0),
            MemoryLevel::new("L2", 1024 * 1024, 4.0, 100.0),
            MemoryLevel::new("L3", 36 * 1024 * 1024, 14.0, 60.0),
            MemoryLevel::new("DRAM", 192 * 1024 * 1024 * 1024, 90.0, 12.0),
        ])
    }

    /// The ordered levels (fastest first).
    pub fn levels(&self) -> &[MemoryLevel] {
        &self.levels
    }

    /// Index of the smallest level whose capacity holds `bytes`
    /// (the last level if nothing else fits).
    pub fn residence_level(&self, bytes: u64) -> usize {
        for (i, l) in self.levels.iter().enumerate() {
            if bytes <= l.capacity_bytes {
                return i;
            }
        }
        self.levels.len() - 1
    }

    /// The level a working set of `bytes` resides in.
    pub fn residence(&self, bytes: u64) -> &MemoryLevel {
        &self.levels[self.residence_level(bytes)]
    }

    /// True when a working set of `bytes` fits in any cache level
    /// (i.e. anything but the last level).
    pub fn fits_in_cache(&self, bytes: u64) -> bool {
        self.residence_level(bytes) + 1 < self.levels.len()
    }

    /// Latency (ns) of a random access to a structure of `bytes` total size.
    pub fn access_latency_ns(&self, bytes: u64) -> f64 {
        self.residence(bytes).latency_ns
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::xeon_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_model_levels() {
        let h = MemoryHierarchy::xeon_node();
        assert_eq!(h.levels().len(), 4);
        assert_eq!(h.levels()[0].name, "L1");
        assert_eq!(h.levels()[3].name, "DRAM");
    }

    #[test]
    fn residence_moves_outward_with_size() {
        let h = MemoryHierarchy::xeon_node();
        assert_eq!(h.residence(1024).name, "L1");
        assert_eq!(h.residence(512 * 1024).name, "L2");
        assert_eq!(h.residence(20 * 1024 * 1024).name, "L3");
        assert_eq!(h.residence(1 << 32).name, "DRAM");
    }

    #[test]
    fn latency_monotone_in_size() {
        let h = MemoryHierarchy::xeon_node();
        let sizes = [1_000u64, 100_000, 10_000_000, 1 << 33];
        let lats: Vec<f64> = sizes.iter().map(|&s| h.access_latency_ns(s)).collect();
        for w in lats.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn fits_in_cache_boundary() {
        let h = MemoryHierarchy::xeon_node();
        assert!(h.fits_in_cache(1024));
        assert!(h.fits_in_cache(30 * 1024 * 1024));
        assert!(!h.fits_in_cache(64 * 1024 * 1024 * 1024));
    }

    #[test]
    fn oversized_working_set_maps_to_last_level() {
        let h = MemoryHierarchy::xeon_node();
        assert_eq!(h.residence_level(u64::MAX), 3);
    }

    #[test]
    fn stream_time_increases_with_bytes() {
        let l = MemoryLevel::new("DRAM", 1 << 40, 90.0, 12.0);
        assert!(l.stream_time_ns(1 << 20) < l.stream_time_ns(1 << 30));
        assert!(l.stream_time_ns(0) >= 90.0);
    }

    #[test]
    #[should_panic]
    fn non_increasing_capacities_panic() {
        MemoryHierarchy::new(vec![
            MemoryLevel::new("A", 100, 1.0, 1.0),
            MemoryLevel::new("B", 100, 2.0, 1.0),
        ]);
    }

    #[test]
    #[should_panic]
    fn empty_hierarchy_panics() {
        MemoryHierarchy::new(vec![]);
    }
}
