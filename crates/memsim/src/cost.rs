//! Analytic cost model for streaming sparse updates.
//!
//! This prices the two strategies the paper contrasts:
//!
//! * **flat** — every update is a point access into one large structure of
//!   `nnz` entries (random access priced at the latency of the level the
//!   whole structure resides in), plus the amortised cost of periodically
//!   rebuilding that large structure; and
//! * **hierarchical** — updates go to a small level-1 structure; every
//!   `c_i` updates level `i` is merged into level `i+1`, which streams both
//!   structures once through the level they reside in.
//!
//! The model is intentionally coarse — it exists to predict the *shape*
//! (orders of magnitude and crossovers) that the measured benchmarks then
//! confirm.

use crate::hierarchy::MemoryHierarchy;

/// Estimated cost of one logical streaming update, broken into components.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateCost {
    /// Nanoseconds spent on the in-fast-memory append/accumulate work.
    pub fast_ns: f64,
    /// Nanoseconds (amortised per update) spent merging into slower levels.
    pub merge_ns: f64,
}

impl UpdateCost {
    /// Total nanoseconds per update.
    pub fn total_ns(&self) -> f64 {
        self.fast_ns + self.merge_ns
    }

    /// Updates per second implied by the cost.
    pub fn updates_per_second(&self) -> f64 {
        if self.total_ns() <= 0.0 {
            f64::INFINITY
        } else {
            1e9 / self.total_ns()
        }
    }
}

/// Cost model bound to a memory hierarchy.
#[derive(Debug, Clone)]
pub struct CostModel {
    hierarchy: MemoryHierarchy,
    /// Bytes stored per sparse entry (index + value), default 24
    /// (two u64 indices + one f64/u64 value).
    pub bytes_per_entry: u64,
}

impl CostModel {
    /// Build a model over a hierarchy with the default entry size.
    pub fn new(hierarchy: MemoryHierarchy) -> Self {
        Self {
            hierarchy,
            bytes_per_entry: 24,
        }
    }

    /// The memory hierarchy used by the model.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Cost per update of the flat strategy with a settled structure of
    /// `nnz` entries and a pending buffer merged every `pending_limit`
    /// updates.
    pub fn flat_update_cost(&self, nnz: u64, pending_limit: u64) -> UpdateCost {
        let pending_limit = pending_limit.max(1);
        // Append to the pending buffer: sequential access to a small buffer.
        let pending_bytes = pending_limit * self.bytes_per_entry;
        let fast_ns = self
            .hierarchy
            .access_latency_ns(pending_bytes.min(64 * 1024));
        // Every pending_limit updates the whole settled structure is re-read
        // and re-written (two-pointer merge): 2 * nnz * bytes streamed.
        let settled_bytes = nnz.saturating_mul(self.bytes_per_entry);
        let level = self.hierarchy.residence(settled_bytes.max(1));
        let merge_total_ns = level.stream_time_ns(2 * settled_bytes + 2 * pending_bytes);
        UpdateCost {
            fast_ns,
            merge_ns: merge_total_ns / pending_limit as f64,
        }
    }

    /// Cost per update of an N-level hierarchy with cuts `cuts[0..N-1]`
    /// (level N is unbounded and holds `total_nnz` entries at steady state).
    pub fn hierarchical_update_cost(&self, cuts: &[u64], total_nnz: u64) -> UpdateCost {
        if cuts.is_empty() {
            return self.flat_update_cost(total_nnz, 1 << 20);
        }
        // Level-1 append.
        let l1_bytes = cuts[0] * self.bytes_per_entry;
        let fast_ns = self.hierarchy.access_latency_ns(l1_bytes.min(64 * 1024));

        // Each level i cascades into level i+1 once every `cuts[i]` updates
        // (approximately: level i fills after cuts[i] new entries arrive).
        // The cascade streams level i and level i+1 once.
        let mut merge_ns = 0.0;
        for (i, &cut) in cuts.iter().enumerate() {
            let next_size = if i + 1 < cuts.len() {
                cuts[i + 1]
            } else {
                total_nnz.max(cut)
            };
            let this_bytes = cut * self.bytes_per_entry;
            let next_bytes = next_size * self.bytes_per_entry;
            let level = self.hierarchy.residence(next_bytes.max(1));
            let cascade_ns = level.stream_time_ns(2 * (this_bytes + next_bytes));
            // Amortise over the cut[i] updates between cascades at this level.
            merge_ns += cascade_ns / cut.max(1) as f64;
        }
        UpdateCost { fast_ns, merge_ns }
    }

    /// Predicted speed-up of the hierarchical strategy over the flat one for
    /// a matrix of `total_nnz` stored entries.
    pub fn predicted_speedup(&self, cuts: &[u64], total_nnz: u64, pending_limit: u64) -> f64 {
        let flat = self.flat_update_cost(total_nnz, pending_limit).total_ns();
        let hier = self.hierarchical_update_cost(cuts, total_nnz).total_ns();
        flat / hier
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(MemoryHierarchy::xeon_node())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_cuts(levels: usize, base: u64, ratio: u64) -> Vec<u64> {
        (0..levels).map(|i| base * ratio.pow(i as u32)).collect()
    }

    #[test]
    fn flat_cost_grows_with_nnz() {
        let m = CostModel::default();
        let small = m.flat_update_cost(10_000, 1024).total_ns();
        let large = m.flat_update_cost(100_000_000, 1024).total_ns();
        assert!(large > small * 10.0, "large {large} vs small {small}");
    }

    #[test]
    fn hierarchical_cost_nearly_flat_in_nnz() {
        let m = CostModel::default();
        let cuts = geometric_cuts(4, 1 << 13, 8);
        let small = m.hierarchical_update_cost(&cuts, 1_000_000).total_ns();
        let large = m.hierarchical_update_cost(&cuts, 100_000_000).total_ns();
        assert!(
            large < small * 5.0,
            "hierarchical cost should grow sub-linearly: {small} -> {large}"
        );
    }

    #[test]
    fn hierarchy_beats_flat_at_scale() {
        let m = CostModel::default();
        let cuts = geometric_cuts(4, 1 << 13, 8);
        let speedup = m.predicted_speedup(&cuts, 100_000_000, 1 << 10);
        assert!(speedup > 5.0, "predicted speedup {speedup}");
    }

    #[test]
    fn empty_cuts_falls_back_to_flat() {
        let m = CostModel::default();
        let a = m.hierarchical_update_cost(&[], 1_000_000);
        let b = m.flat_update_cost(1_000_000, 1 << 20);
        assert_eq!(a, b);
    }

    #[test]
    fn updates_per_second_inverse_of_cost() {
        let c = UpdateCost {
            fast_ns: 50.0,
            merge_ns: 50.0,
        };
        assert!((c.updates_per_second() - 1e7).abs() < 1.0);
        assert!(UpdateCost::default().updates_per_second().is_infinite());
    }

    #[test]
    fn single_instance_rate_above_one_million_per_second() {
        // Sanity-check against the paper's headline single-instance figure:
        // the model should predict > 1M updates/s for reasonable cuts.
        let m = CostModel::default();
        let cuts = geometric_cuts(4, 1 << 15, 8);
        let cost = m.hierarchical_update_cost(&cuts, 100_000_000);
        assert!(
            cost.updates_per_second() > 1.0e6,
            "model predicts only {} updates/s",
            cost.updates_per_second()
        );
    }

    #[test]
    fn deeper_hierarchy_reduces_merge_cost_for_huge_matrices() {
        let m = CostModel::default();
        let shallow = m.hierarchical_update_cost(&geometric_cuts(1, 1 << 13, 8), 1_000_000_000);
        let deep = m.hierarchical_update_cost(&geometric_cuts(5, 1 << 13, 8), 1_000_000_000);
        assert!(deep.total_ns() < shallow.total_ns());
    }
}
