//! # hyperstream-memsim
//!
//! A memory-hierarchy cost model and a set-associative cache simulator.
//!
//! The paper's central causal claim is that a hierarchical hypersparse
//! matrix "ensures that the majority of updates are performed in fast
//! memory" (Fig. 1).  On the authors' cluster this is observed indirectly
//! through update rates; in this reproduction we additionally *measure* it
//! with two instruments:
//!
//! * [`hierarchy::MemoryHierarchy`] — an analytic model (capacities,
//!   latencies, bandwidths of L1/L2/L3/DRAM) that maps a working-set size to
//!   the level it resides in and prices an access accordingly; and
//! * [`cache::CacheSim`] — a set-associative LRU cache simulator that counts
//!   hits and misses for the actual address traces produced by flat vs.
//!   hierarchical update strategies (driven by
//!   [`tracker::AccessTracker`]).
//!
//! These drive experiment E5 (`memory_pressure` binary) and the per-level
//! statistics reported by `hyperstream-hier`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod hierarchy;
pub mod tracker;

pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use cost::{CostModel, UpdateCost};
pub use hierarchy::{MemoryHierarchy, MemoryLevel};
pub use tracker::{AccessKind, AccessTracker, TrackerReport};
