//! Multi-level access tracker: classifies a stream of memory touches into
//! the level of the hierarchy that served them.
//!
//! The tracker chains three [`CacheSim`]s (L1 → L2 → L3); an access that
//! misses every cache is charged to DRAM.  Update strategies under test
//! report their touches through [`AccessTracker::touch`] /
//! [`AccessTracker::touch_range`], and experiment E5 compares the resulting
//! [`TrackerReport`]s for flat vs. hierarchical streaming inserts.

use crate::cache::{CacheConfig, CacheSim};
use crate::hierarchy::MemoryHierarchy;

/// Whether a touch was a read or a write (kept for reporting; the cache
/// model itself is write-allocate so both behave identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Per-level access counts produced by an [`AccessTracker`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrackerReport {
    /// Accesses served by L1.
    pub l1_hits: u64,
    /// Accesses served by L2.
    pub l2_hits: u64,
    /// Accesses served by L3.
    pub l3_hits: u64,
    /// Accesses that had to go to DRAM.
    pub dram_accesses: u64,
    /// Estimated total time in nanoseconds under the bound hierarchy model.
    pub total_ns: f64,
}

impl TrackerReport {
    /// Total number of touches.
    pub fn total_accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.dram_accesses
    }

    /// Fraction of touches served by any cache level (the "fast memory"
    /// fraction of Fig. 1).
    pub fn fast_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        (self.l1_hits + self.l2_hits + self.l3_hits) as f64 / total as f64
    }

    /// Average nanoseconds per touch.
    pub fn avg_ns_per_access(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.total_ns / total as f64
        }
    }
}

/// Chained-cache access tracker.
#[derive(Debug, Clone)]
pub struct AccessTracker {
    l1: CacheSim,
    l2: CacheSim,
    l3: CacheSim,
    hierarchy: MemoryHierarchy,
    report: TrackerReport,
}

impl AccessTracker {
    /// Tracker with L1/L2/L3 geometries matching the default Xeon node model.
    pub fn new() -> Self {
        Self::with_configs(
            CacheConfig::l1(),
            CacheConfig::l2(),
            CacheConfig::l3(),
            MemoryHierarchy::xeon_node(),
        )
    }

    /// Tracker with explicit cache geometries and latency model.
    pub fn with_configs(
        l1: CacheConfig,
        l2: CacheConfig,
        l3: CacheConfig,
        hierarchy: MemoryHierarchy,
    ) -> Self {
        Self {
            l1: CacheSim::new(l1),
            l2: CacheSim::new(l2),
            l3: CacheSim::new(l3),
            hierarchy,
            report: TrackerReport::default(),
        }
    }

    /// Record one touched byte address.
    pub fn touch(&mut self, addr: u64, _kind: AccessKind) {
        let levels = self.hierarchy.levels();
        if self.l1.access(addr) {
            self.report.l1_hits += 1;
            self.report.total_ns += levels[0].latency_ns;
        } else if self.l2.access(addr) {
            self.report.l2_hits += 1;
            self.report.total_ns += levels[1.min(levels.len() - 1)].latency_ns;
        } else if self.l3.access(addr) {
            self.report.l3_hits += 1;
            self.report.total_ns += levels[2.min(levels.len() - 1)].latency_ns;
        } else {
            self.report.dram_accesses += 1;
            self.report.total_ns += levels[levels.len() - 1].latency_ns;
        }
    }

    /// Record a touched byte range (one touch per cache line).
    pub fn touch_range(&mut self, addr: u64, bytes: u64, kind: AccessKind) {
        let line = self.l1.config().line_bytes;
        let first = addr / line;
        let last = (addr + bytes.saturating_sub(1)) / line;
        for l in first..=last {
            self.touch(l * line, kind);
        }
    }

    /// The counts accumulated so far.
    pub fn report(&self) -> TrackerReport {
        self.report
    }

    /// Clear counters and cache contents.
    pub fn reset(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.report = TrackerReport::default();
    }
}

impl Default for AccessTracker {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_working_set_stays_fast() {
        let mut t = AccessTracker::new();
        for pass in 0..3 {
            for addr in (0..8 * 1024u64).step_by(8) {
                t.touch(addr, AccessKind::Write);
            }
            if pass == 0 {
                t.reset_counters_only();
            }
        }
        let r = t.report();
        assert!(
            r.fast_fraction() > 0.95,
            "fast fraction {}",
            r.fast_fraction()
        );
    }

    impl AccessTracker {
        fn reset_counters_only(&mut self) {
            self.report = TrackerReport::default();
        }
    }

    #[test]
    fn huge_random_working_set_goes_to_dram() {
        let mut t = AccessTracker::new();
        // Touch 2 million distinct lines once each: almost everything misses
        // all three caches after they warm up.
        let mut addr = 0u64;
        for i in 0..2_000_000u64 {
            addr = addr.wrapping_add(0x9E3779B97F4A7C15).rotate_left(7) ^ i;
            t.touch(addr % (1 << 36), AccessKind::Write);
        }
        let r = t.report();
        assert!(
            r.dram_accesses as f64 > 0.5 * r.total_accesses() as f64,
            "dram fraction too low: {} of {}",
            r.dram_accesses,
            r.total_accesses()
        );
    }

    #[test]
    fn touch_range_counts_lines() {
        let mut t = AccessTracker::new();
        t.touch_range(0, 256, AccessKind::Read); // 4 lines of 64B
        assert_eq!(t.report().total_accesses(), 4);
    }

    #[test]
    fn report_helpers() {
        let r = TrackerReport {
            l1_hits: 6,
            l2_hits: 2,
            l3_hits: 1,
            dram_accesses: 1,
            total_ns: 100.0,
        };
        assert_eq!(r.total_accesses(), 10);
        assert!((r.fast_fraction() - 0.9).abs() < 1e-12);
        assert!((r.avg_ns_per_access() - 10.0).abs() < 1e-12);
        assert_eq!(TrackerReport::default().fast_fraction(), 0.0);
        assert_eq!(TrackerReport::default().avg_ns_per_access(), 0.0);
    }

    #[test]
    fn dram_time_dominates_when_missing() {
        let mut fast = AccessTracker::new();
        for _ in 0..1000 {
            fast.touch(64, AccessKind::Read);
        }
        let mut slow = AccessTracker::new();
        for i in 0..1000u64 {
            slow.touch(i * (1 << 22), AccessKind::Read);
        }
        assert!(slow.report().avg_ns_per_access() > fast.report().avg_ns_per_access() * 5.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = AccessTracker::new();
        t.touch(0, AccessKind::Write);
        t.reset();
        assert_eq!(t.report().total_accesses(), 0);
    }
}
