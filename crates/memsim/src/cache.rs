//! A set-associative, write-allocate, LRU cache simulator.
//!
//! The simulator is deliberately simple — one level, physical addresses are
//! whatever `u64` keys the caller supplies — because its job is comparative:
//! feed it the address trace of a *flat* update loop and of a *hierarchical*
//! update loop over the same edge stream and compare hit rates (experiment
//! E5).  Absolute miss counts are not meant to match any particular CPU.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Cache line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1-like cache.
    pub fn l1() -> Self {
        Self {
            capacity_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 1 MiB, 16-way L2-like cache.
    pub fn l2() -> Self {
        Self {
            capacity_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// A 32 MiB, 16-way L3-like cache.
    pub fn l3() -> Self {
        Self {
            capacity_bytes: 32 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize / self.ways
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// Set-associative LRU cache simulator.
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    line_shift: u32,
    sets: Vec<Vec<u64>>, // each set: line tags in LRU order (front = MRU)
    stats: CacheStats,
}

impl CacheSim {
    /// Create a simulator with the given geometry.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (line size not a power of two,
    /// capacity not divisible into sets, zero ways).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "associativity must be positive");
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        Self {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            sets: vec![Vec::with_capacity(cfg.ways); sets],
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            set.insert(0, line);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// Access a contiguous byte range (e.g. one stored entry's index+value).
    pub fn access_range(&mut self, addr: u64, bytes: u64) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes.saturating_sub(1)) >> self.line_shift;
        for line in first..=last {
            self.access(line << self.line_shift);
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drop all cached lines and counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(CacheConfig::l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let cfg = CacheConfig {
            capacity_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        };
        let mut c = CacheSim::new(cfg);
        // Stream a working set 32x the cache size twice: second pass still misses.
        let span = cfg.capacity_bytes * 32;
        for pass in 0..2 {
            for addr in (0..span).step_by(64) {
                c.access(addr);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        assert!(c.stats().hit_rate() < 0.05);
    }

    #[test]
    fn working_set_smaller_than_cache_hits() {
        let mut c = CacheSim::new(CacheConfig::l1());
        let span = 8 * 1024u64; // 8 KiB fits in 32 KiB
        for pass in 0..3 {
            for addr in (0..span).step_by(64) {
                c.access(addr);
            }
            if pass == 0 {
                c.reset_stats();
            }
        }
        assert!(c.stats().hit_rate() > 0.95);
    }

    #[test]
    fn lru_eviction_order() {
        let cfg = CacheConfig {
            capacity_bytes: 256,
            line_bytes: 64,
            ways: 2,
        }; // 2 sets x 2 ways
        let mut c = CacheSim::new(cfg);
        // Addresses mapping to set 0: lines 0, 2, 4 (line = addr/64; set = line % 2)
        c.access(0); // line 0
        c.access(128); // line 2
        c.access(0); // touch line 0 -> MRU
        c.access(256); // line 4 evicts line 2 (LRU)
        assert!(c.access(0)); // still cached
        assert!(!c.access(128)); // was evicted
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = CacheSim::new(CacheConfig::l1());
        c.access_range(100, 200); // spans lines 1..=4 (bytes 100..300)
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn stats_helpers() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = CacheSim::new(CacheConfig::l1());
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn preset_geometries_consistent() {
        for cfg in [CacheConfig::l1(), CacheConfig::l2(), CacheConfig::l3()] {
            assert!(cfg.sets() > 0);
            assert_eq!(
                cfg.sets() as u64 * cfg.ways as u64 * cfg.line_bytes,
                cfg.capacity_bytes
            );
        }
    }

    #[test]
    #[should_panic]
    fn bad_line_size_panics() {
        CacheSim::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 48,
            ways: 2,
        });
    }
}
