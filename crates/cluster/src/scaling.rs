//! Weak-scaling measurement: run N independent instances concurrently on
//! real threads and measure aggregate throughput and parallel efficiency.

use crate::measure::SystemKind;
use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};
use std::time::Instant;

/// One point of a weak-scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Number of concurrent instances (threads).
    pub instances: usize,
    /// Total updates applied across all instances.
    pub updates: u64,
    /// Wall-clock seconds for the slowest instance.
    pub seconds: f64,
}

impl ScalingPoint {
    /// Aggregate updates per second.
    pub fn aggregate_rate(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.updates as f64 / self.seconds
        }
    }

    /// Per-instance updates per second.
    pub fn per_instance_rate(&self) -> f64 {
        self.aggregate_rate() / self.instances.max(1) as f64
    }
}

/// Parallel efficiency of a scaling curve relative to its first point
/// (`efficiency[i] = per_instance_rate[i] / per_instance_rate[0]`).
pub fn efficiencies(points: &[ScalingPoint]) -> Vec<f64> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let base = first.per_instance_rate().max(1e-12);
    points
        .iter()
        .map(|p| (p.per_instance_rate() / base).min(1.5))
        .collect()
}

/// Run a weak-scaling experiment: for each requested instance count, spawn
/// that many threads, each streaming `updates_per_instance` power-law edges
/// into its own private matrix instance, and time the run.
///
/// Only `SystemKind::HierGraphBlas` and `SystemKind::FlatGraphBlas` are
/// supported here (they are the systems whose scaling we measure rather than
/// replay from published results).
pub fn measure_scaling(
    system: SystemKind,
    instance_counts: &[usize],
    updates_per_instance: u64,
    dim: u64,
) -> Vec<ScalingPoint> {
    assert!(
        matches!(
            system,
            SystemKind::HierGraphBlas | SystemKind::FlatGraphBlas
        ),
        "scaling is measured for GraphBLAS systems only"
    );
    let mut out = Vec::with_capacity(instance_counts.len());
    for &n in instance_counts {
        let n = n.max(1);
        let start = Instant::now();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for instance_id in 0..n {
                handles.push(scope.spawn(move || {
                    run_one_instance(system, instance_id as u64, updates_per_instance, dim)
                }));
            }
            for h in handles {
                h.join().expect("instance thread panicked");
            }
        });
        let seconds = start.elapsed().as_secs_f64().max(1e-9);
        out.push(ScalingPoint {
            instances: n,
            updates: updates_per_instance * n as u64,
            seconds,
        });
    }
    out
}

fn run_one_instance(system: SystemKind, instance_id: u64, updates: u64, dim: u64) {
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        vertices: 1 << 20,
        dim,
        seed: 0x5EED_0000 + instance_id,
        ..PowerLawConfig::default()
    });
    const BATCH: usize = 10_000;
    let mut sink = crate::measure::make_sink(system, dim);
    let mut remaining = updates;
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    while remaining > 0 {
        let take = remaining.min(BATCH as u64) as usize;
        let batch = gen.batch(take);
        hyperstream_workload::edges_to_tuples_into(&batch, &mut rows, &mut cols, &mut vals);
        sink.insert_batch(&rows, &cols, &vals).expect("in bounds");
        remaining -= take as u64;
    }
    sink.flush().expect("flush completes");
    std::hint::black_box(sink.total_weight());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_math() {
        let p = ScalingPoint {
            instances: 4,
            updates: 4000,
            seconds: 2.0,
        };
        assert_eq!(p.aggregate_rate(), 2000.0);
        assert_eq!(p.per_instance_rate(), 500.0);
    }

    #[test]
    fn efficiencies_relative_to_first() {
        let pts = vec![
            ScalingPoint {
                instances: 1,
                updates: 100,
                seconds: 1.0,
            },
            ScalingPoint {
                instances: 2,
                updates: 200,
                seconds: 1.25,
            },
        ];
        let eff = efficiencies(&pts);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        assert!((eff[1] - 0.8).abs() < 1e-12);
        assert!(efficiencies(&[]).is_empty());
    }

    #[test]
    fn measure_scaling_runs_threads() {
        let pts = measure_scaling(SystemKind::HierGraphBlas, &[1, 2], 20_000, 1 << 32);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].instances, 1);
        assert_eq!(pts[1].instances, 2);
        assert_eq!(pts[1].updates, 40_000);
        assert!(pts[0].aggregate_rate() > 0.0);
        // Two instances should deliver more aggregate throughput than one
        // on any machine with at least two cores; allow generous slack for
        // single-core CI machines.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            >= 2
        {
            assert!(pts[1].aggregate_rate() > pts[0].aggregate_rate() * 0.8);
        }
    }

    #[test]
    #[should_panic]
    fn scaling_rejects_replayed_systems() {
        measure_scaling(SystemKind::TpcCLike, &[1], 100, 1 << 20);
    }
}
