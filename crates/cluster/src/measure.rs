//! Single-instance update-rate measurement for every system under test.
//!
//! Every system is constructed as a `Box<dyn StreamingSink<u64>>` by
//! [`make_sink`] and driven by the single generic [`drive_sink`] harness —
//! there is exactly one ingest loop, so a timing difference between systems
//! can only come from the systems themselves.

use hyperstream_baselines::{ArrayStore, DocStore, RowStore, TabletStore};
use hyperstream_d4m::{HierAssoc, HierAssocConfig};
use hyperstream_graphblas::{GrbResult, Matrix, StreamingSink, StreamingSystem};
use hyperstream_hier::{HierConfig, HierMatrix, ShardedHierMatrix};
use hyperstream_workload::{edges_to_tuples_into, Edge};
use std::time::Instant;

/// Shard count used when the sharded engine is constructed through
/// [`make_sink`] (a fixed, machine-independent default so measurements are
/// comparable; the `parallel_rate` benchmark sweeps the count instead).
pub const DEFAULT_SINK_SHARDS: usize = 4;

/// The systems compared in the single-instance and Fig. 2 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Hierarchical hypersparse GraphBLAS matrix (the paper's contribution).
    HierGraphBlas,
    /// The sharded parallel ingest engine over hierarchical shards
    /// ([`DEFAULT_SINK_SHARDS`] worker threads).
    ShardedHierGraphBlas,
    /// A single flat GraphBLAS matrix with pending tuples (no hierarchy).
    FlatGraphBlas,
    /// Hierarchical D4M associative arrays (string keys).
    HierD4m,
    /// Accumulo-like tablet store analogue.
    AccumuloLike,
    /// SciDB-like chunked array store analogue.
    SciDbLike,
    /// TPC-C-like transactional row store analogue.
    TpcCLike,
    /// CrateDB-like sharded document store analogue.
    CrateDbLike,
}

impl SystemKind {
    /// Display label (matches the Fig. 2 legend where applicable).
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::HierGraphBlas => "Hierarchical GraphBLAS",
            SystemKind::ShardedHierGraphBlas => "Sharded Hierarchical GraphBLAS",
            SystemKind::FlatGraphBlas => "Flat GraphBLAS",
            SystemKind::HierD4m => "Hierarchical D4M",
            SystemKind::AccumuloLike => "Accumulo (analogue)",
            SystemKind::SciDbLike => "SciDB (analogue)",
            SystemKind::TpcCLike => "Oracle TPC-C (analogue)",
            SystemKind::CrateDbLike => "CrateDB (analogue)",
        }
    }

    /// All systems, fastest-expected first.
    pub fn all() -> &'static [SystemKind] {
        &[
            SystemKind::HierGraphBlas,
            SystemKind::ShardedHierGraphBlas,
            SystemKind::FlatGraphBlas,
            SystemKind::HierD4m,
            SystemKind::AccumuloLike,
            SystemKind::CrateDbLike,
            SystemKind::SciDbLike,
            SystemKind::TpcCLike,
        ]
    }
}

/// A measured single-instance ingest rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRate {
    /// Which system was measured.
    pub system: SystemKind,
    /// Total updates applied.
    pub updates: u64,
    /// Wall-clock seconds taken.
    pub seconds: f64,
}

impl MeasuredRate {
    /// Updates per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Construct one fresh instance of `system` behind the combined
/// ingest + query interface ([`StreamingSystem`]).  `dim` bounds the index
/// space of the GraphBLAS-backed systems (the key-value analogues are
/// unbounded).  This is the *only* construction site, so the ingest-only
/// and mixed-workload harnesses always measure identically configured
/// instances.
pub fn make_system(system: SystemKind, dim: u64) -> Box<dyn StreamingSystem<u64>> {
    match system {
        SystemKind::HierGraphBlas => Box::new(
            HierMatrix::<u64>::new(dim, dim, HierConfig::paper_default()).expect("valid dims"),
        ),
        SystemKind::ShardedHierGraphBlas => Box::new(
            ShardedHierMatrix::<u64>::with_shards(dim, dim, DEFAULT_SINK_SHARDS)
                .expect("valid dims"),
        ),
        SystemKind::FlatGraphBlas => {
            Box::new(Matrix::<u64>::new(dim, dim).with_pending_limit(1 << 17))
        }
        SystemKind::HierD4m => Box::new(HierAssoc::new(HierAssocConfig::default_schedule())),
        SystemKind::AccumuloLike => Box::new(TabletStore::new()),
        SystemKind::SciDbLike => Box::new(ArrayStore::new()),
        SystemKind::TpcCLike => Box::new(RowStore::new()),
        SystemKind::CrateDbLike => Box::new(DocStore::new()),
    }
}

/// Alias of [`make_system`] retained for the ingest-only call sites; the
/// combined trait object is also a [`StreamingSink`].
pub fn make_sink(system: SystemKind, dim: u64) -> Box<dyn StreamingSystem<u64>> {
    make_system(system, dim)
}

/// The one generic ingest loop: stream every batch into `sink`, flush, and
/// read back the total weight (defeating dead-code elimination and checking
/// that no updates were dropped).  Returns the total weight ingested.
///
/// Sink errors propagate typed instead of panicking the harness: a
/// supervised engine that loses a worker mid-stream (see the sharded
/// engine's fault model) surfaces here as `Err`, and the caller decides
/// whether the measurement is salvageable.
pub fn drive_sink<S: StreamingSink<u64> + ?Sized>(
    sink: &mut S,
    batches: &[Vec<Edge>],
) -> GrbResult<f64> {
    // The tuple-slice buffers are reused across batches (allocating three
    // fresh vectors per batch is measurable harness overhead; see
    // `edges_to_tuples_into`).
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    for batch in batches {
        edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
        sink.insert_batch(&rows, &cols, &vals)?;
    }
    sink.flush()?;
    Ok(std::hint::black_box(sink.total_weight()))
}

/// Stream `batches` of edges into one instance of `system` and measure the
/// sustained update rate.  The same edge batches are used for every system,
/// and every system runs through [`drive_sink`].
pub fn measure_system(system: SystemKind, batches: &[Vec<Edge>], dim: u64) -> MeasuredRate {
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let mut sink = make_sink(system, dim);
    let start = Instant::now();
    // The measurement boundary: a fresh, healthy sink failing the stream is
    // a harness bug, not a recoverable condition.
    let weight = drive_sink(sink.as_mut(), batches).expect("fresh sink ingests the stream");
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    debug_assert_eq!(
        weight,
        batches
            .iter()
            .flatten()
            .map(|e| e.weight as f64)
            .sum::<f64>(),
        "sink dropped updates"
    );
    MeasuredRate {
        system,
        updates: total,
        seconds,
    }
}

/// The query blend interleaved with ingest by the mixed harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMix {
    /// Rotate row extract / row degree / point get / top-k — the balanced
    /// analytics blend.
    Rotating,
    /// Degree-ranking heavy: three top-k scans per degree-distribution
    /// query — the blend that used to be all full sweeps and now exercises
    /// the incremental degree index.
    TopKHeavy,
    /// Transpose-heavy: column extract / column degree / two in-degree
    /// top-k scans — the blend that used to be all cursor sweeps and now
    /// exercises the lazily-maintained column twin and column degree
    /// index.
    ColHeavy,
}

impl QueryMix {
    /// Stable label used in reports and benchmark artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            QueryMix::Rotating => "rotating",
            QueryMix::TopKHeavy => "topk-heavy",
            QueryMix::ColHeavy => "col-heavy",
        }
    }
}

/// A measured mixed ingest + query workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixedRate {
    /// Which system was measured.
    pub system: SystemKind,
    /// The query blend that was interleaved.
    pub mix: QueryMix,
    /// Queries issued after each ingest batch.
    pub queries_per_batch: usize,
    /// Total updates applied.
    pub inserts: u64,
    /// Total queries answered.
    pub queries: u64,
    /// Wall-clock seconds for the whole mixed run.
    pub seconds: f64,
}

impl MixedRate {
    /// Updates ingested per second of the mixed run.
    pub fn insert_rate(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.inserts as f64 / self.seconds
        }
    }

    /// Queries answered per second of the mixed run.
    pub fn query_rate(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.queries as f64 / self.seconds
        }
    }
}

/// The one generic *mixed* loop: after every ingested batch, issue
/// `queries_per_batch` queries of the given [`QueryMix`] — targets drawn
/// from the batch just ingested, so queries hit live data (the
/// analytics-while-ingest pattern of the paper's motivating applications).
/// Returns `(inserts, queries)`; query answers feed a black-boxed checksum
/// so nothing is optimised away.
pub fn drive_mixed<S: StreamingSystem<u64> + ?Sized>(
    sys: &mut S,
    batches: &[Vec<Edge>],
    queries_per_batch: usize,
    mix: QueryMix,
) -> GrbResult<(u64, u64)> {
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    let mut row_buf: Vec<(u64, u64)> = Vec::new();
    let mut inserts = 0u64;
    let mut queries = 0u64;
    let mut checksum = 0u64;
    for batch in batches {
        edges_to_tuples_into(batch, &mut rows, &mut cols, &mut vals);
        sys.insert_batch(&rows, &cols, &vals)?;
        inserts += rows.len() as u64;
        for q in 0..queries_per_batch {
            let e = &batch[(q * 7919 + 13) % batch.len()];
            match mix {
                QueryMix::Rotating => match q % 4 {
                    0 => {
                        sys.read_row(e.src, &mut row_buf);
                        checksum ^= row_buf.len() as u64;
                    }
                    1 => checksum ^= sys.read_row_degree(e.src) as u64,
                    2 => checksum ^= sys.read_get(e.src, e.dst).unwrap_or(0),
                    _ => {
                        let top = sys.read_top_k(8);
                        checksum ^= top.first().map(|t| t.0).unwrap_or(0);
                    }
                },
                QueryMix::TopKHeavy => match q % 4 {
                    3 => {
                        let hist = sys.read_degree_histogram();
                        checksum ^= hist.keys().next_back().copied().unwrap_or(0);
                    }
                    _ => {
                        let top = sys.read_top_k(8);
                        checksum ^= top.first().map(|t| t.0).unwrap_or(0);
                    }
                },
                QueryMix::ColHeavy => match q % 4 {
                    0 => {
                        sys.read_col(e.dst, &mut row_buf);
                        checksum ^= row_buf.len() as u64;
                    }
                    1 => checksum ^= sys.read_col_degree(e.dst) as u64,
                    _ => {
                        let top = sys.read_in_top_k(8);
                        checksum ^= top.first().map(|t| t.0).unwrap_or(0);
                    }
                },
            }
            queries += 1;
        }
    }
    sys.flush()?;
    std::hint::black_box(checksum);
    Ok((inserts, queries))
}

/// Stream `batches` into one instance of `system` with
/// `queries_per_batch` interleaved queries of `mix` and measure the mixed
/// rates.
pub fn measure_mixed(
    system: SystemKind,
    batches: &[Vec<Edge>],
    queries_per_batch: usize,
    dim: u64,
    mix: QueryMix,
) -> MixedRate {
    let mut sys = make_system(system, dim);
    let start = Instant::now();
    let (inserts, queries) = drive_mixed(sys.as_mut(), batches, queries_per_batch, mix)
        .expect("fresh system ingests the stream");
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    MixedRate {
        system,
        mix,
        queries_per_batch,
        inserts,
        queries,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};

    fn small_batches() -> Vec<Vec<Edge>> {
        let mut gen = PowerLawGenerator::new(PowerLawConfig {
            vertices: 10_000,
            dim: 1 << 32,
            seed: 3,
            ..PowerLawConfig::default()
        });
        (0..4).map(|_| gen.batch(2_000)).collect()
    }

    #[test]
    fn all_systems_measurable() {
        let batches = small_batches();
        for &sys in SystemKind::all() {
            let r = measure_system(sys, &batches, 1 << 32);
            assert_eq!(r.updates, 8_000, "{:?}", sys);
            assert!(r.updates_per_second() > 0.0, "{:?}", sys);
        }
    }

    #[test]
    fn hierarchical_graphblas_not_slower_than_tpcc_analogue() {
        let batches = small_batches();
        let hier = measure_system(SystemKind::HierGraphBlas, &batches, 1 << 32);
        let tpcc = measure_system(SystemKind::TpcCLike, &batches, 1 << 32);
        // A weak sanity check at tiny scale (the real separation shows up at
        // realistic batch counts in the benchmarks).
        assert!(hier.updates_per_second() > 0.2 * tpcc.updates_per_second());
    }

    #[test]
    fn every_sink_ingests_the_same_stream_identically() {
        let batches = small_batches();
        let expected_weight: f64 = batches.iter().flatten().map(|e| e.weight as f64).sum();
        for &sys in SystemKind::all() {
            let mut sink = make_sink(sys, 1 << 32);
            let weight = drive_sink(sink.as_mut(), &batches).unwrap();
            assert_eq!(
                weight,
                expected_weight,
                "{} dropped updates",
                sink.sink_name()
            );
            assert!(sink.nvals() > 0, "{} stored nothing", sink.sink_name());
        }
    }

    #[test]
    fn graphblas_sinks_agree_on_distinct_cells() {
        // The hierarchical, flat and D4M sinks represent the same matrix, so
        // after identical streams they must report identical nvals.
        let batches = small_batches();
        let nvals: Vec<usize> = [
            SystemKind::HierGraphBlas,
            SystemKind::ShardedHierGraphBlas,
            SystemKind::FlatGraphBlas,
            SystemKind::HierD4m,
        ]
        .iter()
        .map(|&sys| {
            let mut sink = make_sink(sys, 1 << 32);
            drive_sink(sink.as_mut(), &batches).unwrap();
            sink.nvals()
        })
        .collect();
        assert_eq!(nvals[0], nvals[1]);
        assert_eq!(nvals[0], nvals[2]);
        assert_eq!(nvals[0], nvals[3]);
    }

    #[test]
    fn all_systems_answer_mixed_workloads() {
        let batches = small_batches();
        for &mix in &[QueryMix::Rotating, QueryMix::TopKHeavy, QueryMix::ColHeavy] {
            for &sys in SystemKind::all() {
                let r = measure_mixed(sys, &batches, 3, 1 << 32, mix);
                assert_eq!(r.inserts, 8_000, "{sys:?} {mix:?}");
                assert_eq!(r.queries, 12, "{sys:?} {mix:?}");
                assert!(
                    r.insert_rate() > 0.0 && r.query_rate() > 0.0,
                    "{sys:?} {mix:?}"
                );
                assert_eq!(r.mix, mix);
            }
        }
    }

    #[test]
    fn all_systems_agree_on_reader_answers() {
        // Every system ingests the same stream; reader answers must be
        // byte-identical across systems (the cross-system comparison the
        // MatrixReader contract exists for).
        type ReaderAnswers = (
            usize,
            Vec<(u64, u64)>,
            usize,
            Vec<(u64, usize)>,
            Vec<(u64, u64)>,
            usize,
            Vec<(u64, usize)>,
        );
        let batches = small_batches();
        let probe = batches[0][0];
        let mut references: Option<ReaderAnswers> = None;
        for &kind in SystemKind::all() {
            let mut sys = make_system(kind, 1 << 32);
            drive_sink(sys.as_mut(), &batches).unwrap();
            let nnz = sys.read_nnz();
            let mut row = Vec::new();
            sys.read_row(probe.src, &mut row);
            let degree = sys.read_row_degree(probe.src);
            let top = sys.read_top_k(5);
            // Column answers must agree too, whether a system serves them
            // from a column twin (hier family) or the sweep fallback (the
            // key-value analogues).
            let mut col = Vec::new();
            sys.read_col(probe.dst, &mut col);
            let col_degree = sys.read_col_degree(probe.dst);
            let in_top = sys.read_in_top_k(5);
            match &references {
                None => references = Some((nnz, row, degree, top, col, col_degree, in_top)),
                Some((e_nnz, e_row, e_deg, e_top, e_col, e_cdeg, e_itop)) => {
                    assert_eq!(nnz, *e_nnz, "{kind:?}");
                    assert_eq!(&row, e_row, "{kind:?}");
                    assert_eq!(degree, *e_deg, "{kind:?}");
                    assert_eq!(&top, e_top, "{kind:?}");
                    assert_eq!(&col, e_col, "{kind:?}");
                    assert_eq!(col_degree, *e_cdeg, "{kind:?}");
                    assert_eq!(&in_top, e_itop, "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), SystemKind::all().len());
    }

    #[test]
    fn measured_rate_math() {
        let r = MeasuredRate {
            system: SystemKind::HierGraphBlas,
            updates: 1000,
            seconds: 0.5,
        };
        assert_eq!(r.updates_per_second(), 2000.0);
        let zero = MeasuredRate { seconds: 0.0, ..r };
        assert_eq!(zero.updates_per_second(), 0.0);
    }
}
