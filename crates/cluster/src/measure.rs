//! Single-instance update-rate measurement for every system under test.

use hyperstream_baselines::{
    ArrayStore, DocStore, InsertRecord, RowStore, StreamingStore, TabletStore,
};
use hyperstream_d4m::{HierAssoc, HierAssocConfig};
use hyperstream_graphblas::Matrix;
use hyperstream_hier::{HierConfig, HierMatrix};
use hyperstream_workload::{edges_to_tuples, Edge};
use std::time::Instant;

/// The systems compared in the single-instance and Fig. 2 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Hierarchical hypersparse GraphBLAS matrix (the paper's contribution).
    HierGraphBlas,
    /// A single flat GraphBLAS matrix with pending tuples (no hierarchy).
    FlatGraphBlas,
    /// Hierarchical D4M associative arrays (string keys).
    HierD4m,
    /// Accumulo-like tablet store analogue.
    AccumuloLike,
    /// SciDB-like chunked array store analogue.
    SciDbLike,
    /// TPC-C-like transactional row store analogue.
    TpcCLike,
    /// CrateDB-like sharded document store analogue.
    CrateDbLike,
}

impl SystemKind {
    /// Display label (matches the Fig. 2 legend where applicable).
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::HierGraphBlas => "Hierarchical GraphBLAS",
            SystemKind::FlatGraphBlas => "Flat GraphBLAS",
            SystemKind::HierD4m => "Hierarchical D4M",
            SystemKind::AccumuloLike => "Accumulo (analogue)",
            SystemKind::SciDbLike => "SciDB (analogue)",
            SystemKind::TpcCLike => "Oracle TPC-C (analogue)",
            SystemKind::CrateDbLike => "CrateDB (analogue)",
        }
    }

    /// All systems, fastest-expected first.
    pub fn all() -> &'static [SystemKind] {
        &[
            SystemKind::HierGraphBlas,
            SystemKind::FlatGraphBlas,
            SystemKind::HierD4m,
            SystemKind::AccumuloLike,
            SystemKind::CrateDbLike,
            SystemKind::SciDbLike,
            SystemKind::TpcCLike,
        ]
    }
}

/// A measured single-instance ingest rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRate {
    /// Which system was measured.
    pub system: SystemKind,
    /// Total updates applied.
    pub updates: u64,
    /// Wall-clock seconds taken.
    pub seconds: f64,
}

impl MeasuredRate {
    /// Updates per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Stream `batches` of edges into one instance of `system` and measure the
/// sustained update rate.  The same edge batches are used for every system.
pub fn measure_system(system: SystemKind, batches: &[Vec<Edge>], dim: u64) -> MeasuredRate {
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    let start = Instant::now();
    match system {
        SystemKind::HierGraphBlas => {
            let mut m = HierMatrix::<u64>::new(dim, dim, HierConfig::paper_default())
                .expect("valid dims");
            for batch in batches {
                let (r, c, v) = edges_to_tuples(batch);
                m.update_batch(&r, &c, &v).expect("in-bounds updates");
            }
            std::hint::black_box(m.total_entries_bound());
        }
        SystemKind::FlatGraphBlas => {
            let mut m = Matrix::<u64>::new(dim, dim).with_pending_limit(1 << 17);
            for batch in batches {
                for e in batch {
                    m.accum_element(e.src, e.dst, e.weight).expect("in bounds");
                }
            }
            m.wait();
            std::hint::black_box(m.nvals());
        }
        SystemKind::HierD4m => {
            let mut m = HierAssoc::new(HierAssocConfig::default_schedule());
            for batch in batches {
                for e in batch {
                    m.update(&e.src.to_string(), &e.dst.to_string(), e.weight as f64);
                }
            }
            std::hint::black_box(m.updates());
        }
        SystemKind::AccumuloLike => run_store(&mut TabletStore::new(), batches),
        SystemKind::SciDbLike => run_store(&mut ArrayStore::new(), batches),
        SystemKind::TpcCLike => run_store(&mut RowStore::new(), batches),
        SystemKind::CrateDbLike => run_store(&mut DocStore::new(), batches),
    }
    MeasuredRate {
        system,
        updates: total,
        seconds: start.elapsed().as_secs_f64().max(1e-9),
    }
}

fn run_store<S: StreamingStore>(store: &mut S, batches: &[Vec<Edge>]) {
    for batch in batches {
        let recs: Vec<InsertRecord> = batch
            .iter()
            .map(|e| InsertRecord::new(e.src, e.dst, e.weight))
            .collect();
        store.insert_batch(&recs);
    }
    store.flush();
    std::hint::black_box(store.total_weight());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperstream_workload::{PowerLawConfig, PowerLawGenerator};

    fn small_batches() -> Vec<Vec<Edge>> {
        let mut gen = PowerLawGenerator::new(PowerLawConfig {
            vertices: 10_000,
            dim: 1 << 32,
            seed: 3,
            ..PowerLawConfig::default()
        });
        (0..4).map(|_| gen.batch(2_000)).collect()
    }

    #[test]
    fn all_systems_measurable() {
        let batches = small_batches();
        for &sys in SystemKind::all() {
            let r = measure_system(sys, &batches, 1 << 32);
            assert_eq!(r.updates, 8_000, "{:?}", sys);
            assert!(r.updates_per_second() > 0.0, "{:?}", sys);
        }
    }

    #[test]
    fn hierarchical_graphblas_not_slower_than_tpcc_analogue() {
        let batches = small_batches();
        let hier = measure_system(SystemKind::HierGraphBlas, &batches, 1 << 32);
        let tpcc = measure_system(SystemKind::TpcCLike, &batches, 1 << 32);
        // A weak sanity check at tiny scale (the real separation shows up at
        // realistic batch counts in the benchmarks).
        assert!(hier.updates_per_second() > 0.2 * tpcc.updates_per_second());
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), SystemKind::all().len());
    }

    #[test]
    fn measured_rate_math() {
        let r = MeasuredRate {
            system: SystemKind::HierGraphBlas,
            updates: 1000,
            seconds: 0.5,
        };
        assert_eq!(r.updates_per_second(), 2000.0);
        let zero = MeasuredRate {
            seconds: 0.0,
            ..r
        };
        assert_eq!(zero.updates_per_second(), 0.0);
    }
}
