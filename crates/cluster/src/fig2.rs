//! Assembly of the Figure 2 data set: update rate versus number of servers
//! for every system in the comparison.

use crate::extrapolate::ExtrapolationModel;
use crate::measure::{measure_system, SystemKind};
use crate::node::ClusterSpec;
use crate::scaling::measure_scaling;
use hyperstream_baselines::published::published;
use hyperstream_baselines::{PublishedSystem, ALL_PUBLISHED};
use hyperstream_workload::{Edge, PowerLawConfig, PowerLawGenerator};

/// One (servers, rate) point of a Fig. 2 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// Number of servers (x-axis).
    pub servers: u64,
    /// Updates per second (y-axis).
    pub rate: f64,
    /// True when the point is a direct local measurement, false when it is
    /// extrapolated or replayed from published results.
    pub measured: bool,
}

/// One labelled curve of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Series {
    /// Legend label.
    pub label: String,
    /// Points, ordered by server count.
    pub points: Vec<Fig2Point>,
}

impl Fig2Series {
    /// The rate at the largest server count in the series.
    pub fn peak_rate(&self) -> f64 {
        self.points.last().map(|p| p.rate).unwrap_or(0.0)
    }
}

/// Knobs of the Fig. 2 reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Options {
    /// Updates streamed per instance during the local measurements.
    pub updates_per_instance: u64,
    /// Matrix dimension (2^32 for IPv4-sized traffic matrices).
    pub dim: u64,
    /// Maximum number of concurrent local instances to measure
    /// (defaults to the local core count).
    pub max_local_instances: usize,
    /// Cluster to extrapolate onto (defaults to the full SuperCloud).
    pub cluster: ClusterSpec,
}

impl Default for Fig2Options {
    fn default() -> Self {
        Self {
            updates_per_instance: 400_000,
            dim: 1 << 32,
            max_local_instances: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cluster: ClusterSpec::supercloud_full(),
        }
    }
}

impl Fig2Options {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        Self {
            updates_per_instance: 40_000,
            max_local_instances: 2,
            ..Self::default()
        }
    }
}

/// Produce every series of Fig. 2:
///
/// * "Hierarchical GraphBLAS" — measured locally (single instance and
///   multi-instance weak scaling), extrapolated to the full cluster;
/// * the locally measured single-server rates of the database analogues and
///   hierarchical D4M (one measured point each at `servers = 1`); and
/// * the published reference lines of the original figure.
pub fn build_fig2(opts: &Fig2Options) -> Vec<Fig2Series> {
    let mut series = Vec::new();

    // --- Hierarchical GraphBLAS: measure locally, extrapolate. ---
    let instance_counts: Vec<usize> = {
        let mut v = vec![1usize];
        let mut n = 2usize;
        while n <= opts.max_local_instances {
            v.push(n);
            n *= 2;
        }
        v
    };
    let scaling = measure_scaling(
        SystemKind::HierGraphBlas,
        &instance_counts,
        opts.updates_per_instance,
        opts.dim,
    );
    let model = ExtrapolationModel::from_scaling(&scaling, opts.cluster);
    let mut points = Vec::new();
    for servers in model.default_server_counts() {
        points.push(Fig2Point {
            servers,
            rate: model.rate_at(servers),
            // The single-server point is grounded in a real measurement of a
            // full node's worth of instances only when the local machine has
            // that many cores; it is still labelled modelled because the
            // per-node instance count is the SuperCloud's, not the local one.
            measured: false,
        });
    }
    // Prepend the genuinely measured local points (expressed as fractional
    // "servers" worth of instances is meaningless, so they are reported as
    // a measured point at servers = 1 using the measured node efficiency).
    if let Some(first) = scaling.first() {
        points.insert(
            0,
            Fig2Point {
                servers: 1,
                rate: first.aggregate_rate(),
                measured: true,
            },
        );
    }
    series.push(Fig2Series {
        label: "Hierarchical GraphBLAS".to_string(),
        points,
    });

    // --- Locally measured single-instance systems (one point each). ---
    let batches = measurement_batches(opts);
    for &sys in &[
        SystemKind::HierD4m,
        SystemKind::AccumuloLike,
        SystemKind::SciDbLike,
        SystemKind::TpcCLike,
        SystemKind::CrateDbLike,
        SystemKind::FlatGraphBlas,
    ] {
        let measured = measure_system(sys, &batches, opts.dim);
        series.push(Fig2Series {
            label: format!("{} [local]", sys.label()),
            points: vec![Fig2Point {
                servers: 1,
                rate: measured.updates_per_second(),
                measured: true,
            }],
        });
    }

    // --- Published reference lines. ---
    for r in ALL_PUBLISHED {
        let mut pts = Vec::new();
        let mut s = 1u64;
        while s <= r.max_servers {
            pts.push(Fig2Point {
                servers: s,
                rate: r.rate_at(s),
                measured: false,
            });
            s *= 4;
        }
        if pts.last().map(|p| p.servers) != Some(r.max_servers) {
            pts.push(Fig2Point {
                servers: r.max_servers,
                rate: r.rate_at(r.max_servers),
                measured: false,
            });
        }
        series.push(Fig2Series {
            label: format!("{} [published]", r.label),
            points: pts,
        });
    }

    series
}

/// The headline comparison of the paper: does the hierarchical GraphBLAS
/// extrapolation exceed the best previously published rate?
pub fn headline_comparison(series: &[Fig2Series]) -> (f64, f64) {
    let ours = series
        .iter()
        .find(|s| s.label.starts_with("Hierarchical GraphBLAS"))
        .map(|s| s.peak_rate())
        .unwrap_or(0.0);
    let best_published = published(PublishedSystem::HierarchicalD4m).rate_at(1100);
    (ours, best_published)
}

fn measurement_batches(opts: &Fig2Options) -> Vec<Vec<Edge>> {
    let mut gen = PowerLawGenerator::new(PowerLawConfig {
        dim: opts.dim,
        seed: 2020,
        ..PowerLawConfig::paper()
    });
    // Use a modest number of updates for the per-system single-point
    // measurements; slow systems (TPC-C analogue) would otherwise dominate
    // the harness runtime.
    let per_batch = 10_000usize;
    let batches = (opts.updates_per_instance as usize / per_batch).clamp(1, 20);
    (0..batches).map(|_| gen.batch(per_batch)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig2_has_all_series() {
        let series = build_fig2(&Fig2Options::quick());
        // 1 hierarchical GraphBLAS + 6 local systems + 6 published lines.
        assert_eq!(series.len(), 13);
        let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels
            .iter()
            .any(|l| l.starts_with("Hierarchical GraphBLAS")));
        assert!(labels
            .iter()
            .any(|l| l.contains("Accumulo D4M [published]")));
        for s in &series {
            assert!(!s.points.is_empty(), "empty series {}", s.label);
            for w in s.points.windows(2) {
                assert!(w[0].servers <= w[1].servers);
            }
        }
    }

    #[test]
    fn hierarchical_graphblas_wins_at_scale() {
        let series = build_fig2(&Fig2Options::quick());
        let (ours, best_published) = headline_comparison(&series);
        assert!(
            ours > best_published,
            "hierarchical GraphBLAS ({ours:.3e}) should exceed the best published rate ({best_published:.3e})"
        );
    }

    #[test]
    fn measured_points_flagged() {
        let series = build_fig2(&Fig2Options::quick());
        let local: Vec<&Fig2Series> = series
            .iter()
            .filter(|s| s.label.contains("[local]"))
            .collect();
        assert_eq!(local.len(), 6);
        assert!(local.iter().all(|s| s.points.iter().all(|p| p.measured)));
        let published: Vec<&Fig2Series> = series
            .iter()
            .filter(|s| s.label.contains("[published]"))
            .collect();
        assert!(published
            .iter()
            .all(|s| s.points.iter().all(|p| !p.measured)));
    }
}
