//! Plain-text and CSV rendering of experiment results.

use crate::fig2::Fig2Series;

/// Render a set of Fig. 2 series as an aligned text table
/// (one row per point).
pub fn render_table(series: &[Fig2Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:>8} {:>16} {:>9}\n",
        "system", "servers", "updates/sec", "source"
    ));
    out.push_str(&"-".repeat(76));
    out.push('\n');
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{:<38} {:>8} {:>16.3e} {:>9}\n",
                s.label,
                p.servers,
                p.rate,
                if p.measured { "measured" } else { "modelled" }
            ));
        }
    }
    out
}

/// Render as CSV with header `system,servers,updates_per_sec,source`.
pub fn render_csv(series: &[Fig2Series]) -> String {
    let mut out = String::from("system,servers,updates_per_sec,source\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.6e},{}\n",
                s.label.replace(',', ";"),
                p.servers,
                p.rate,
                if p.measured { "measured" } else { "modelled" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2::Fig2Point;

    fn sample() -> Vec<Fig2Series> {
        vec![Fig2Series {
            label: "Sys,tem A".to_string(),
            points: vec![
                Fig2Point {
                    servers: 1,
                    rate: 1.0e6,
                    measured: true,
                },
                Fig2Point {
                    servers: 1100,
                    rate: 7.5e10,
                    measured: false,
                },
            ],
        }]
    }

    #[test]
    fn table_contains_rows_and_sources() {
        let t = render_table(&sample());
        assert!(t.contains("Sys,tem A"));
        assert!(t.contains("measured"));
        assert!(t.contains("modelled"));
        assert!(t.contains("1100"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn csv_escapes_commas_and_has_header() {
        let c = render_csv(&sample());
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("system,servers,updates_per_sec,source"));
        let first = lines.next().unwrap();
        assert!(first.starts_with("Sys;tem A,1,"));
        assert_eq!(c.lines().count(), 3);
    }
}
