//! # hyperstream-cluster
//!
//! A model of the MIT SuperCloud experiment of §III: many *independent*
//! hierarchical-matrix instances, one per process, spread over many server
//! nodes, all streaming edges simultaneously.
//!
//! The paper's experiment is embarrassingly parallel — instances never
//! communicate; the aggregate rate is the sum of per-instance rates times a
//! parallel-efficiency factor (memory-bandwidth and scheduler contention
//! within a node).  That structure makes an honest reproduction possible on
//! one machine:
//!
//! 1. [`measure`] — measure real single-instance update rates for every
//!    system (hierarchical GraphBLAS, flat GraphBLAS, hierarchical D4M,
//!    the database analogues) on the local machine;
//! 2. [`scaling`] — run 1..=`cores` real instances concurrently (one thread
//!    each) and measure the per-node parallel efficiency curve;
//! 3. [`extrapolate`] — combine measured per-instance rate, measured
//!    efficiency, and the cluster topology ([`node::ClusterSpec`]) to
//!    produce the update rate at any server count, labelling every point as
//!    *measured* or *modelled*;
//! 4. [`fig2`] — assemble the full Figure 2 data set (our measured systems
//!    plus the published reference lines from `hyperstream-baselines`).
//!
//! The `fig2` benchmark binary in `hyperstream-bench` is a thin CLI around
//! step 4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extrapolate;
pub mod fig2;
pub mod measure;
pub mod node;
pub mod report;
pub mod scaling;

pub use extrapolate::ExtrapolationModel;
pub use fig2::{build_fig2, Fig2Options, Fig2Point, Fig2Series};
pub use measure::{
    drive_mixed, drive_sink, make_sink, make_system, measure_mixed, measure_system, MeasuredRate,
    MixedRate, QueryMix, SystemKind, DEFAULT_SINK_SHARDS,
};
pub use node::{ClusterSpec, NodeSpec};
pub use report::{render_csv, render_table};
pub use scaling::{measure_scaling, ScalingPoint};
