//! Extrapolation from locally measured rates to cluster scale.
//!
//! The paper's experiment has no inter-instance communication, so the
//! aggregate rate at `S` servers is
//!
//! ```text
//! rate(S) = per_instance_rate
//!         * instances_per_node * node_efficiency   // measured locally
//!         * S^scaling_exponent                     // multi-node scaling
//! ```
//!
//! `per_instance_rate` and `node_efficiency` are *measured* on the local
//! machine; the multi-node exponent defaults to the near-linear weak scaling
//! the paper observes (its Fig. 2 line is straight on a log–log plot).  Every
//! extrapolated point is labelled as modelled so reports never conflate the
//! two.

use crate::node::ClusterSpec;
use crate::scaling::{efficiencies, ScalingPoint};

/// Extrapolation model built from local measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtrapolationModel {
    /// Measured single-instance update rate (updates/s).
    pub per_instance_rate: f64,
    /// Measured parallel efficiency when running one instance per local core
    /// (1.0 = perfect).
    pub node_efficiency: f64,
    /// Exponent of the multi-node weak scaling (1.0 = perfectly linear).
    pub internode_exponent: f64,
    /// Cluster topology to extrapolate onto.
    pub cluster: ClusterSpec,
}

impl ExtrapolationModel {
    /// Build a model from a measured weak-scaling curve.
    ///
    /// The single-instance rate comes from the first point; the node
    /// efficiency from the last point (the most heavily loaded measured
    /// configuration).  The inter-node exponent defaults to 0.98 — the
    /// near-linear scaling of the paper's Fig. 2 — because independent
    /// instances share nothing across nodes.
    pub fn from_scaling(points: &[ScalingPoint], cluster: ClusterSpec) -> Self {
        let per_instance_rate = points.first().map(|p| p.per_instance_rate()).unwrap_or(0.0);
        let eff = efficiencies(points);
        let node_efficiency = eff.last().copied().unwrap_or(1.0).clamp(0.05, 1.0);
        Self {
            per_instance_rate,
            node_efficiency,
            internode_exponent: 0.98,
            cluster,
        }
    }

    /// Aggregate rate of one fully loaded node.
    pub fn node_rate(&self) -> f64 {
        self.per_instance_rate * self.cluster.processes_per_node as f64 * self.node_efficiency
    }

    /// Aggregate rate at `servers` nodes.
    pub fn rate_at(&self, servers: u64) -> f64 {
        if servers == 0 {
            return 0.0;
        }
        self.node_rate() * (servers as f64).powf(self.internode_exponent)
    }

    /// Total instances at `servers` nodes.
    pub fn instances_at(&self, servers: u64) -> u64 {
        servers * self.cluster.processes_per_node as u64
    }

    /// The server counts conventionally plotted on Fig. 2's x-axis
    /// (1, 2, 4, … up to the cluster size, plus the cluster size itself).
    pub fn default_server_counts(&self) -> Vec<u64> {
        let mut counts = Vec::new();
        let mut s = 1u64;
        while s < self.cluster.nodes as u64 {
            counts.push(s);
            s *= 2;
        }
        counts.push(self.cluster.nodes as u64);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ClusterSpec;

    fn model(rate: f64, eff: f64) -> ExtrapolationModel {
        ExtrapolationModel {
            per_instance_rate: rate,
            node_efficiency: eff,
            internode_exponent: 0.98,
            cluster: ClusterSpec::supercloud_full(),
        }
    }

    #[test]
    fn from_scaling_uses_first_and_last_points() {
        let pts = vec![
            ScalingPoint {
                instances: 1,
                updates: 1_000_000,
                seconds: 1.0,
            },
            ScalingPoint {
                instances: 4,
                updates: 4_000_000,
                seconds: 1.25,
            },
        ];
        let m = ExtrapolationModel::from_scaling(&pts, ClusterSpec::supercloud_full());
        assert!((m.per_instance_rate - 1.0e6).abs() < 1.0);
        assert!((m.node_efficiency - 0.8).abs() < 1e-9);
    }

    #[test]
    fn rate_scales_nearly_linearly() {
        let m = model(1.0e6, 0.9);
        let r1 = m.rate_at(1);
        let r1100 = m.rate_at(1100);
        assert!(r1100 > 900.0 * r1);
        assert!(r1100 < 1100.0 * r1 * 1.01);
        assert_eq!(m.rate_at(0), 0.0);
    }

    #[test]
    fn paper_headline_reachable_with_measured_like_numbers() {
        // With the paper's own per-instance rate (>1M updates/s), 28
        // instances per node and 1,100 nodes, the model must land in the
        // 10^10..10^11 range that Fig. 2 reports.
        let m = model(3.0e6, 0.85);
        let total = m.rate_at(1100);
        assert!(
            total > 1.0e10 && total < 2.0e11,
            "extrapolated rate {total:.3e} outside the expected band"
        );
        assert_eq!(m.instances_at(1100), 30_800);
    }

    #[test]
    fn default_server_counts_cover_axis() {
        let m = model(1.0e6, 1.0);
        let counts = m.default_server_counts();
        assert_eq!(counts.first(), Some(&1));
        assert_eq!(counts.last(), Some(&1100));
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_scaling_curve_gives_zero_rate() {
        let m = ExtrapolationModel::from_scaling(&[], ClusterSpec::supercloud_full());
        assert_eq!(m.per_instance_rate, 0.0);
        assert_eq!(m.rate_at(100), 0.0);
    }
}
