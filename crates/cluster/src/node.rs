//! Cluster topology: nodes, processes, instances.

/// Hardware description of one server node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Physical cores per node.
    pub cores: u32,
    /// Memory per node in GiB.
    pub memory_gib: u32,
}

impl NodeSpec {
    /// The MIT SuperCloud nodes used by the paper (Intel Xeon Platinum,
    /// roughly 32 usable cores and 192 GiB per node; 1,100 nodes ≈ 34,000
    /// processors).
    pub fn supercloud() -> Self {
        Self {
            cores: 32,
            memory_gib: 192,
        }
    }

    /// The local machine, probed from the OS.
    pub fn local() -> Self {
        Self {
            cores: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(4),
            memory_gib: 16,
        }
    }
}

/// Topology of a whole cluster run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Node hardware.
    pub node: NodeSpec,
    /// Number of server nodes.
    pub nodes: u32,
    /// Matrix-building processes per node (each owns one hierarchical
    /// matrix instance).
    pub processes_per_node: u32,
}

impl ClusterSpec {
    /// The paper's largest configuration: 1,100 servers, ~28 processes per
    /// node giving ~31,000 instances on ~34,000 cores.
    pub fn supercloud_full() -> Self {
        Self {
            node: NodeSpec::supercloud(),
            nodes: 1100,
            processes_per_node: 28,
        }
    }

    /// A single SuperCloud node.
    pub fn supercloud_single_node() -> Self {
        Self {
            nodes: 1,
            ..Self::supercloud_full()
        }
    }

    /// Total number of matrix instances.
    pub fn total_instances(&self) -> u64 {
        self.nodes as u64 * self.processes_per_node as u64
    }

    /// Total number of processor cores.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.node.cores as u64
    }

    /// Process oversubscription factor (processes per core).
    pub fn oversubscription(&self) -> f64 {
        self.processes_per_node as f64 / self.node.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supercloud_scale_matches_paper() {
        let c = ClusterSpec::supercloud_full();
        // ~31,000 instances on ~1,100 nodes with ~34,000 processors.
        assert_eq!(c.nodes, 1100);
        assert!((30_000..32_000).contains(&c.total_instances()));
        assert!((33_000..36_000).contains(&c.total_cores()));
        assert!(c.oversubscription() <= 1.0);
    }

    #[test]
    fn single_node_spec() {
        let c = ClusterSpec::supercloud_single_node();
        assert_eq!(c.nodes, 1);
        assert_eq!(c.total_instances(), 28);
    }

    #[test]
    fn local_node_has_cores() {
        assert!(NodeSpec::local().cores >= 1);
    }
}
