#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Property-based tests of the incremental degree index: for random update
//! streams, cut schedules, shard counts, window rotations and mid-stream
//! flushes, every index-served answer — per-row degree, row reduce, top-k,
//! nnz, degree histogram — must be byte-identical to the retained
//! cursor-sweep fallback *and* to the answer computed from the
//! materialised flat matrix.  Snapshots taken mid-stream must keep
//! answering the captured state no matter how far the source streams on.

use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

// A stream from a small id pool (duplicates + cross-level row collisions)
// scattered over the hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..48, 0u64..48, 1u64..5), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

// An arbitrary valid cut schedule (strictly increasing, non-zero).
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..4).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

// Reference top-k (degree descending, row ascending) from a flat matrix.
fn reference_top_k(flat: &Matrix<u64>, k: usize) -> Vec<(u64, usize)> {
    let d = flat.dcsr();
    let mut degs: Vec<(u64, usize)> = (0..d.nrows_nonempty())
        .map(|slot| (d.row_ids()[slot], d.row_slot(slot).0.len()))
        .collect();
    degs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    degs.truncate(k);
    degs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn hier_index_matches_sweep_and_flat(
        updates in update_stream(300),
        cuts in cut_schedule(),
        flush_at in 0usize..300,
        k in 0usize..12,
    ) {
        let flat = build_flat(&updates);
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let mut hier = HierMatrix::<u64>::new(DIM, DIM, cfg).unwrap();
        let mut snap = None;
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            hier.update(r, c, v).unwrap();
            if i == flush_at {
                // Mid-stream: query, snapshot, flush — none may disturb
                // the stream, and the snapshot must freeze here.
                let _ = hier.read_top_k(3);
                snap = Some((hier.snapshot(), i));
                hier.flush().unwrap();
            }
        }
        // Index-served answers == cursor-sweep fallback == flat reference.
        prop_assert_eq!(hier.read_nnz(), hier.sweep_nnz());
        prop_assert_eq!(hier.read_nnz(), flat.nvals());
        prop_assert_eq!(hier.read_top_k(k), hier.sweep_top_k(k));
        prop_assert_eq!(hier.read_top_k(k), reference_top_k(&flat, k));
        prop_assert_eq!(hier.read_degree_histogram(), hier.sweep_degree_histogram());
        prop_assert_eq!(
            hier.read_degree_histogram(),
            {
                let mut flat_ro = flat.clone();
                flat_ro.read_degree_histogram()
            }
        );
        for probe in [updates[0].0, (49 * 20_000_019) % DIM] {
            prop_assert_eq!(hier.read_row_degree(probe), hier.sweep_row_degree(probe));
            prop_assert_eq!(hier.read_row_reduce(probe), hier.sweep_row_reduce(probe));
            let expect_deg = flat.dcsr().row(probe).map_or(0, |(c, _)| c.len());
            prop_assert_eq!(hier.read_row_degree(probe), expect_deg);
        }
        // Row-range scans equal the filtered flat entries.
        let (lo, hi) = (updates[0].0.min(updates[updates.len() - 1].0),
                        updates[0].0.max(updates[updates.len() - 1].0) + 1);
        let mut got = Vec::new();
        hier.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<(u64, u64, u64)> = flat
            .iter_settled()
            .filter(|&(r, _, _)| r >= lo && r < hi)
            .collect();
        prop_assert_eq!(got, expect);
        // The mid-stream snapshot still answers the captured prefix.
        if let Some((mut snap, at)) = snap {
            let prefix = build_flat(&updates[..=at]);
            prop_assert_eq!(snap.read_nnz(), prefix.nvals());
            prop_assert_eq!(snap.read_top_k(5), reference_top_k(&prefix, 5));
            let probe = updates[0].0;
            prop_assert_eq!(
                snap.read_row_degree(probe),
                prefix.dcsr().row(probe).map_or(0, |(c, _)| c.len())
            );
        }
    }

    #[test]
    fn sharded_pushdown_index_matches_flat(
        updates in update_stream(300),
        cuts in cut_schedule(),
        shards in 1usize..=8,
        chunk in 1usize..64,
        flush_at in 0usize..300,
        k in 0usize..12,
        partitioner_sel in 0u64..2,
    ) {
        let flat = build_flat(&updates);
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let partitioner = if partitioner_sel == 1 {
            ShardPartitioner::RowRange
        } else {
            ShardPartitioner::RowHash
        };
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            cfg,
            ShardedConfig {
                partitioner,
                chunk_tuples: chunk,
                channel_depth: 2,
                round_tuples: 128,
                ..ShardedConfig::with_shards(shards)
            },
        )
        .unwrap();
        let mut snap = None;
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            engine.update(r, c, v).unwrap();
            if i == flush_at {
                snap = Some((engine.snapshot().unwrap(), i));
                engine.flush().unwrap();
            }
        }
        // Pushed-down answers (each worker serves from its shard's index)
        // equal the flat reference; nothing materialises.
        prop_assert_eq!(engine.read_nnz(), flat.nvals());
        prop_assert_eq!(engine.read_top_k(k), reference_top_k(&flat, k));
        prop_assert_eq!(
            engine.read_degree_histogram(),
            {
                let mut flat_ro = flat.clone();
                flat_ro.read_degree_histogram()
            }
        );
        let probe = updates[0].0;
        prop_assert_eq!(
            engine.read_row_degree(probe),
            flat.dcsr().row(probe).map_or(0, |(c, _)| c.len())
        );
        prop_assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
        // Range scans dispatch to the overlapping workers only (RowRange)
        // or everyone (RowHash) — answers identical either way.
        let (lo, hi) = (0u64, DIM / 2);
        let mut got = Vec::new();
        engine.read_row_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        let expect: Vec<(u64, u64, u64)> = flat
            .iter_settled()
            .filter(|&(r, _, _)| r < hi)
            .collect();
        prop_assert_eq!(got, expect);
        prop_assert!(engine.last_query_fanout() <= shards);
        // The engine-wide snapshot froze the captured prefix.
        if let Some((mut snap, at)) = snap {
            let prefix = build_flat(&updates[..=at]);
            prop_assert_eq!(snap.read_nnz(), prefix.nvals());
            prop_assert_eq!(snap.read_top_k(4), reference_top_k(&prefix, 4));
        }
    }

    #[test]
    fn windowed_rotation_index_matches_sweep_and_retained_union(
        updates in update_stream(300),
        cuts in cut_schedule(),
        window in 10u64..120,
        max_windows in 1usize..4,
        k in 0usize..10,
    ) {
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let mut w =
            WindowedHierMatrix::<u64>::new(DIM, DIM, cfg, window, max_windows).unwrap();
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            w.update(r, c, v).unwrap();
            if i == updates.len() / 2 {
                // A query mid-stream exercises rebuild-then-invalidate.
                let _ = w.read_nnz();
            }
        }
        // Index answers == cursor sweep over the retained windows ==
        // materialised retained union (evictions included).
        let retained = w.materialize_retained().unwrap();
        prop_assert_eq!(w.read_nnz(), w.sweep_nnz());
        prop_assert_eq!(w.read_nnz(), retained.nvals());
        prop_assert_eq!(w.read_top_k(k), w.sweep_top_k(k));
        prop_assert_eq!(w.read_top_k(k), reference_top_k(&retained, k));
        prop_assert_eq!(w.read_degree_histogram(), w.sweep_degree_histogram());
        let probe = updates[updates.len() - 1].0;
        prop_assert_eq!(w.read_row_degree(probe), w.sweep_row_degree(probe));
        prop_assert_eq!(w.read_row_reduce(probe), w.sweep_row_reduce(probe));
        prop_assert_eq!(
            w.read_row_degree(probe),
            retained.dcsr().row(probe).map_or(0, |(c, _)| c.len())
        );
    }
}

/// The degree histogram served through the generic algorithm layer equals
/// the flat computation for every hierarchical system (the index sits
/// behind `read_degree_histogram`, which `algo::degree_distribution` uses).
#[test]
fn degree_distribution_over_index_matches_flat() {
    use hyperstream::graphblas::algo::degree::degree_distribution;

    let mut flat = Matrix::<u64>::new(DIM, DIM);
    let mut hier =
        HierMatrix::<u64>::new(DIM, DIM, HierConfig::from_cuts(vec![8, 64]).unwrap()).unwrap();
    let mut sharded = ShardedHierMatrix::<u64>::with_shards(DIM, DIM, 3).unwrap();
    for i in 0..4000u64 {
        let (r, c, v) = ((i % 53) * 1_000_003, (i * 11) % 83, i % 3 + 1);
        flat.accum_element(r, c, v).unwrap();
        hier.update(r, c, v).unwrap();
        sharded.update(r, c, v).unwrap();
    }
    let expect = degree_distribution(&mut flat);
    assert_eq!(degree_distribution(&mut hier).counts, expect.counts);
    assert_eq!(degree_distribution(&mut sharded).counts, expect.counts);
}
