//! Property-based tests (proptest) of the core invariants:
//!
//! * GraphBLAS build / extract round-trips and format conversions agree;
//! * `ewise_add` is commutative and associative under `Plus` and its nvals
//!   equals the union of patterns;
//! * the hierarchical matrix equals a flat accumulation for *arbitrary*
//!   streams and cut schedules (the linearity property the paper's cascade
//!   relies on);
//! * DCSR structural invariants survive arbitrary merges.

use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

/// Strategy: a stream of updates with indices drawn from a small id pool
/// (to force duplicates) scattered over the hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..200, 0u64..200, 1u64..5), 0..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| {
                // Scatter over the 2^32 space while keeping collisions likely.
                (r * 20_000_019 % DIM, c * 40_000_003 % DIM, w)
            })
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

/// Strategy: an arbitrary valid cut schedule (strictly increasing, non-zero),
/// 2–5 levels with small cuts so streams of a few hundred updates cascade.
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..5).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn build_extract_round_trip(updates in update_stream(300)) {
        let m = build_flat(&updates);
        let (r, c, v) = m.extract_tuples();
        let rebuilt = Matrix::from_tuples(DIM, DIM, &r, &c, &v, Plus).unwrap();
        prop_assert_eq!(rebuilt.extract_tuples(), m.extract_tuples());
        m.check_invariants().unwrap();
    }

    #[test]
    fn ewise_add_commutative_and_union_sized(a in update_stream(200), b in update_stream(200)) {
        let ma = build_flat(&a);
        let mb = build_flat(&b);
        let ab = ewise_add(&ma, &mb, Plus);
        let ba = ewise_add(&mb, &ma, Plus);
        prop_assert_eq!(ab.extract_tuples(), ba.extract_tuples());

        // nvals equals the size of the union of the patterns.
        let mut union: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
        for (r, c, _) in ma.iter_settled().chain(mb.iter_settled()) {
            union.insert((r, c));
        }
        prop_assert_eq!(ab.nvals(), union.len());
        ab.check_invariants().unwrap();
    }

    #[test]
    fn ewise_add_associative(a in update_stream(120), b in update_stream(120), c in update_stream(120)) {
        let (ma, mb, mc) = (build_flat(&a), build_flat(&b), build_flat(&c));
        let left = ewise_add(&ewise_add(&ma, &mb, Plus), &mc, Plus);
        let right = ewise_add(&ma, &ewise_add(&mb, &mc, Plus), Plus);
        prop_assert_eq!(left.extract_tuples(), right.extract_tuples());
    }

    #[test]
    fn hierarchy_matches_flat_for_arbitrary_cuts(
        updates in update_stream(400),
        cut0 in 1u64..64,
        growth in 2u64..10,
        levels in 2usize..5,
    ) {
        let cfg = HierConfig::geometric(levels, cut0, growth).unwrap();
        let mut hier = HierMatrix::<u64>::new(DIM, DIM, cfg).unwrap();
        for &(r, c, v) in &updates {
            hier.update(r, c, v).unwrap();
        }
        let flat = build_flat(&updates);
        prop_assert_eq!(hier.materialize().extract_tuples(), flat.extract_tuples());
        // Linearity of the total weight.
        let expected: u64 = updates.iter().map(|u| u.2).sum();
        prop_assert_eq!(hier.total_weight(), expected);
    }

    #[test]
    fn hierarchy_batch_and_single_update_agree(updates in update_stream(250)) {
        let cfg = HierConfig::from_cuts(vec![32, 256]).unwrap();
        let mut one_by_one = HierMatrix::<u64>::new(DIM, DIM, cfg.clone()).unwrap();
        for &(r, c, v) in &updates {
            one_by_one.update(r, c, v).unwrap();
        }
        let mut batched = HierMatrix::<u64>::new(DIM, DIM, cfg).unwrap();
        let rows: Vec<u64> = updates.iter().map(|u| u.0).collect();
        let cols: Vec<u64> = updates.iter().map(|u| u.1).collect();
        let vals: Vec<u64> = updates.iter().map(|u| u.2).collect();
        batched.update_batch(&rows, &cols, &vals).unwrap();
        prop_assert_eq!(
            one_by_one.materialize().extract_tuples(),
            batched.materialize().extract_tuples()
        );
    }

    #[test]
    fn cascade_schedule_invariance(
        updates in update_stream(400),
        cuts_a in cut_schedule(),
        cuts_b in cut_schedule(),
        query_at in 1usize..400,
    ) {
        // The paper's correctness claim: because ⊕ is associative and
        // commutative, the cascade schedule — *any* schedule — changes only
        // the cost of maintaining the matrix, never its content.  Two
        // hierarchies with independently random cut schedules, one of them
        // interrupted mid-stream by a materialisation and a full flush, must
        // both equal the flat accumulation.  Both are driven through the
        // `StreamingSink` interface the measurement harness uses.
        let cfg_a = HierConfig::from_cuts(cuts_a).unwrap();
        let cfg_b = HierConfig::from_cuts(cuts_b).unwrap();
        let mut a = HierMatrix::<u64>::new(DIM, DIM, cfg_a).unwrap();
        let mut b = HierMatrix::<u64>::new(DIM, DIM, cfg_b).unwrap();
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            StreamingSink::insert(&mut a, r, c, v).unwrap();
            StreamingSink::insert(&mut b, r, c, v).unwrap();
            if i == query_at {
                // Mid-stream query on `a`, mid-stream cascade-completion on
                // `b`: neither may disturb the represented matrix.
                let _ = a.materialize();
                StreamingSink::flush(&mut b).unwrap();
            }
        }
        let flat = build_flat(&updates);
        prop_assert_eq!(a.materialize().extract_tuples(), flat.extract_tuples());
        prop_assert_eq!(b.materialize().extract_tuples(), flat.extract_tuples());
        // Weight linearity holds at any moment, through the sink interface.
        let expected: u64 = updates.iter().map(|u| u.2).sum();
        prop_assert_eq!(StreamingSink::total_weight(&a), expected as f64);
        prop_assert_eq!(StreamingSink::total_weight(&b), expected as f64);
        prop_assert_eq!(StreamingSink::nvals(&a), flat.nvals());
    }

    #[test]
    fn transpose_involution(updates in update_stream(200)) {
        let m = build_flat(&updates);
        let tt = transpose(&transpose(&m));
        prop_assert_eq!(tt.extract_tuples(), m.extract_tuples());
    }

    #[test]
    fn reductions_conserve_total(updates in update_stream(300)) {
        let m = build_flat(&updates);
        let total = reduce_scalar(&m, PlusMonoid);
        let by_rows = reduce_rows(&m, PlusMonoid).reduce(PlusMonoid);
        let by_cols = reduce_cols(&m, PlusMonoid).reduce(PlusMonoid);
        prop_assert_eq!(total, by_rows);
        prop_assert_eq!(total, by_cols);
        let expected: u64 = updates.iter().map(|u| u.2).sum();
        prop_assert_eq!(total, expected);
    }
}
