#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Property-based tests (proptest) of the sharded parallel ingest engine:
//! a `ShardedHierMatrix` with *any* shard count, *any* row partitioner and
//! *any* cut schedule — interrupted mid-stream by a query and a full flush —
//! must represent exactly the matrix a flat single-threaded accumulation
//! produces.  This is the paper's linearity argument one level up: sharding
//! by row is just another way of splitting the sum `A = Σ_i A_i`.

use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

/// A stream of updates drawn from a small id pool (to force duplicates)
/// scattered over the hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..200, 0u64..200, 1u64..5), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

/// An arbitrary valid cut schedule (strictly increasing, non-zero).
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..5).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_engine_matches_flat_accumulation(
        updates in update_stream(400),
        shards in 1usize..=8,
        row_range in 0u64..2,
        cuts in cut_schedule(),
        chunk in 1usize..128,
        round in 1usize..300,
        query_at in 0usize..400,
    ) {
        let partitioner = if row_range == 1 {
            ShardPartitioner::RowRange
        } else {
            ShardPartitioner::RowHash
        };
        let config = ShardedConfig {
            partitioner,
            chunk_tuples: chunk,
            channel_depth: 2,
            round_tuples: round,
            ..ShardedConfig::with_shards(shards)
        };
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(cuts).unwrap(),
            config,
        )
        .unwrap();

        let expected_weight: u64 = updates.iter().map(|u| u.2).sum();
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            StreamingSink::insert(&mut engine, r, c, v).unwrap();
            if i == query_at {
                // Mid-stream query and cascade/round completion must not
                // disturb the represented matrix...
                let partial = engine.materialize().unwrap();
                prop_assert!(partial.nvals() <= i + 1);
                StreamingSink::flush(&mut engine).unwrap();
            }
            // ...and the total weight stays exact at any moment (staged,
            // in-flight, or settled).
            if i % 97 == 0 {
                let seen: u64 = updates[..=i].iter().map(|u| u.2).sum();
                prop_assert_eq!(StreamingSink::total_weight(&engine), seen as f64);
            }
        }

        let flat = build_flat(&updates);
        prop_assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
        prop_assert_eq!(StreamingSink::total_weight(&engine), expected_weight as f64);
        StreamingSink::flush(&mut engine).unwrap();
        prop_assert_eq!(StreamingSink::nvals(&engine), flat.nvals());
    }

    #[test]
    fn sharded_batch_ingest_matches_flat(
        updates in update_stream(300),
        shards in 1usize..=8,
        batch_len in 1usize..80,
    ) {
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![16, 64]).unwrap(),
            ShardedConfig {
                chunk_tuples: 32,
                round_tuples: 128,
                ..ShardedConfig::with_shards(shards)
            },
        )
        .unwrap();
        for chunk in updates.chunks(batch_len) {
            let rows: Vec<u64> = chunk.iter().map(|u| u.0).collect();
            let cols: Vec<u64> = chunk.iter().map(|u| u.1).collect();
            let vals: Vec<u64> = chunk.iter().map(|u| u.2).collect();
            StreamingSink::insert_batch(&mut engine, &rows, &cols, &vals).unwrap();
        }
        let flat = build_flat(&updates);
        prop_assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
    }

    // Persistent-pool property: ONE engine (one worker set) serves many
    // ingest rounds with flushes and queries interleaved between them.
    // The worker thread ids must be identical before, throughout, and
    // after — the pool never respawns — and the final contents must match
    // a flat accumulation of everything ever inserted.
    #[test]
    fn one_worker_pool_serves_many_rounds(
        updates in update_stream(600),
        shards in 1usize..=6,
        rounds in 2usize..8,
        chunk in 1usize..96,
    ) {
        let config = ShardedConfig {
            partitioner: ShardPartitioner::RowHash,
            chunk_tuples: chunk,
            channel_depth: 2,
            round_tuples: 64,
            ..ShardedConfig::with_shards(shards)
        };
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![16, 128]).unwrap(),
            config,
        )
        .unwrap();
        let ids = engine.worker_ids().unwrap();
        prop_assert_eq!(ids.len(), shards);

        let per_round = updates.len().div_ceil(rounds);
        for (round, slice) in updates.chunks(per_round.max(1)).enumerate() {
            for &(r, c, v) in slice {
                engine.update(r, c, v).unwrap();
            }
            // Interleave every kind of barrier-taking operation.
            match round % 3 {
                0 => { StreamingSink::flush(&mut engine).unwrap(); }
                1 => { let _ = engine.materialize().unwrap(); }
                _ => { let _ = StreamingSink::nvals(&engine); }
            }
            prop_assert_eq!(&engine.worker_ids().unwrap(), &ids, "worker set changed in round {}", round);
        }

        let flat = build_flat(&updates);
        prop_assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
        prop_assert_eq!(StreamingSink::total_weight(&engine),
            updates.iter().map(|u| u.2).sum::<u64>() as f64);
    }

    // Drop-under-load: tearing the engine down while its channels are full
    // of in-flight batches (no flush, no barrier — workers mid-apply) must
    // complete in bounded time.  The poison-pill join in `Drop` may not
    // deadlock against a producer-side backlog.
    #[test]
    fn dropping_loaded_engine_is_bounded(
        updates in update_stream(600),
        shards in 1usize..=8,
    ) {
        let start = std::time::Instant::now();
        {
            let mut engine = ShardedHierMatrix::<u64>::new(
                DIM,
                DIM,
                HierConfig::from_cuts(vec![4, 16]).unwrap(),
                ShardedConfig {
                    // Tiny chunks + depth-1 channels: the stream below is
                    // guaranteed to leave every worker with queued batches.
                    chunk_tuples: 1,
                    channel_depth: 1,
                    round_tuples: 1,
                    ..ShardedConfig::with_shards(shards)
                },
            )
            .unwrap();
            for &(r, c, v) in &updates {
                engine.update(r, c, v).unwrap();
            }
            // Engine dropped here with channels still draining.
        }
        prop_assert!(
            start.elapsed() < std::time::Duration::from_secs(60),
            "drop under load took {:?}", start.elapsed()
        );
    }
}

// Drop-under-fault cases — drop while a barrier is outstanding (timed-out
// flush) and drop after a worker panic — need fault injection to create
// those states deterministically; they live with the rest of the chaos
// suite in `tests/fault_injection.rs` (compiled under `--features
// failpoints`), where a test-order mutex serialises use of the
// process-global failpoint registry that the proptests above must never
// observe armed.
