//! Property-based equivalence of the two settle-sort kernels: the
//! packed-key LSD radix sort (dimensions ≤ 2^32, the dispatcher's choice
//! for the paper's IPv4 matrices) must produce **byte-identical**
//! `(rows, cols, vals)` to the comparison sort it replaced, for every
//! duplicate-combination operator — including the order-sensitive
//! `First`/`Second`, whose semantics depend on duplicates folding in
//! insertion order.  Both kernels are also checked against an independent
//! model (a `BTreeMap` fold in insertion order).

use hyperstream_graphblas::formats::coo::Coo;
use hyperstream_graphblas::ops::binary::{First, Max, Min, Plus, Second};
use hyperstream_graphblas::ops::BinaryOp;
use hyperstream_graphblas::{Index, MergeScratch};
use proptest::prelude::*;
use std::collections::BTreeMap;

const DIM: u64 = 1 << 32;

/// Tuple batches with heavy duplication (small id pool), plus guaranteed
/// boundary coordinates 0 and `DIM - 1` spliced in.
fn tuple_batch(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..50, 0u64..50, 0u64..100), 2..max_len).prop_map(|v| {
        let mut out: Vec<(u64, u64, u64)> = v
            .into_iter()
            .enumerate()
            .map(|(i, (r, c, w))| {
                // Scatter a few ids to the extremes of the index space.
                let row = match r {
                    0 => 0,
                    1 => DIM - 1,
                    _ => (r * 86_028_121) % DIM,
                };
                let col = match c {
                    0 => 0,
                    1 => DIM - 1,
                    _ => (c * 179_424_673) % DIM,
                };
                (row, col, w + i as u64)
            })
            .collect();
        // Duplicate runs: repeat a prefix so several cells collect many
        // values in a known insertion order.
        let dups: Vec<_> = out.iter().take(out.len() / 2).cloned().collect();
        out.extend(dups.into_iter().map(|(r, c, w)| (r, c, w + 1000)));
        out
    })
}

fn build_coo(updates: &[(u64, u64, u64)], dim: u64) -> Coo<u64> {
    let mut c = Coo::new(dim, dim);
    for &(r, col, v) in updates {
        c.push(r % dim, col % dim, v);
    }
    c
}

/// Reference settle: fold duplicates in insertion order into a sorted map.
fn model<Op: BinaryOp<u64>>(
    updates: &[(u64, u64, u64)],
    dim: u64,
    op: Op,
) -> (Vec<Index>, Vec<Index>, Vec<u64>) {
    let mut m: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    for &(r, c, v) in updates {
        m.entry((r % dim, c % dim))
            .and_modify(|acc| *acc = op.apply(*acc, v))
            .or_insert(v);
    }
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    for ((r, c), v) in m {
        rows.push(r);
        cols.push(c);
        vals.push(v);
    }
    (rows, cols, vals)
}

fn check_all_ops(updates: &[(u64, u64, u64)], dim: u64) {
    let mut scratch = MergeScratch::new();
    macro_rules! check {
        ($op:expr, $name:literal) => {
            let mut radix = build_coo(updates, dim);
            radix.sort_dedup_with($op, &mut scratch);
            let mut cmp = build_coo(updates, dim);
            cmp.sort_dedup_comparison_with($op, &mut scratch);
            assert_eq!(radix.parts(), cmp.parts(), "radix vs comparison: {}", $name);
            assert!(radix.is_sorted_dedup() && cmp.is_sorted_dedup());
            let (mr, mc, mv) = model(updates, dim, $op);
            assert_eq!(
                radix.parts(),
                (&mr[..], &mc[..], &mv[..]),
                "kernel vs model: {}",
                $name
            );
        };
    }
    check!(Plus, "Plus");
    check!(Second, "Second");
    check!(First, "First");
    check!(Min, "Min");
    check!(Max, "Max");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // At the paper's 2^32 dimension the dispatcher picks the radix kernel;
    // it must agree byte-for-byte with the comparison kernel and the model
    // under every duplicate operator.
    #[test]
    fn radix_equals_comparison_at_ipv4_dims(updates in tuple_batch(300)) {
        check_all_ops(&updates, DIM);
    }

    // Above 2^32 the dispatcher falls back to the comparison sort; the
    // public entry point must still match the model (and the explicit
    // comparison call remains the identity check).
    #[test]
    fn fallback_dims_stay_correct(updates in tuple_batch(150)) {
        check_all_ops(&updates, 1 << 40);
    }
}

// The duplicate-heavy regime at a settle size that crosses the kernel's
// wide-digit threshold, so the 13-bit digit path (and its histogram
// reuse across settles) is exercised — too slow for proptest, run once.
#[test]
fn wide_digit_path_matches_comparison() {
    let mut scratch = MergeScratch::new();
    for round in 0..3u64 {
        let updates: Vec<(u64, u64, u64)> = (0..40_000u64)
            .map(|i| {
                (
                    (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .rotate_left(7 + round as u32))
                        % DIM,
                    (i.wrapping_mul(0xBF58_476D_1CE4_E5B9)) % DIM,
                    i % 97,
                )
            })
            .collect();
        let mut radix = build_coo(&updates, DIM);
        radix.sort_dedup_with(Second, &mut scratch);
        let mut cmp = build_coo(&updates, DIM);
        cmp.sort_dedup_comparison_with(Second, &mut scratch);
        assert_eq!(radix.parts(), cmp.parts(), "round {round}");
    }
}
