#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Property-based tests (proptest) of the `MatrixReader` cursor layer:
//! for random update streams, cut schedules, shard counts and mid-stream
//! flushes/queries, every reader answer (get / row / degree / reduce /
//! top-k / nnz / sorted entries) from *every* sink system must be
//! byte-identical to the answer computed from the materialised flat
//! matrix.  This is the read-side mirror of the write-side equivalence
//! suites: the cascade schedule, the sharding, the string keys and the
//! storage engines may only change the *cost* of a query, never its value.

use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

/// A stream of updates drawn from a small id pool (to force duplicates and
/// row collisions across hierarchy levels) scattered over the hypersparse
/// index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..60, 0u64..60, 1u64..5), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

/// An arbitrary valid cut schedule (strictly increasing, non-zero).
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..4).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

/// Reference top-k (degree descending, row ascending) from the flat matrix.
fn reference_top_k(flat: &Matrix<u64>, k: usize) -> Vec<(u64, usize)> {
    let d = flat.dcsr();
    let mut degs: Vec<(u64, usize)> = (0..d.nrows_nonempty())
        .map(|slot| (d.row_ids()[slot], d.row_slot(slot).0.len()))
        .collect();
    degs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    degs.truncate(k);
    degs
}

/// Every system under test, constructed with the randomised knobs.
fn all_systems(cuts: &[u64], shards: usize, chunk: usize) -> Vec<Box<dyn StreamingSystem<u64>>> {
    let hier_cfg = HierConfig::from_cuts(cuts.to_vec()).unwrap();
    vec![
        Box::new(Matrix::<u64>::new(DIM, DIM)),
        Box::new(HierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone()).unwrap()),
        // A window large enough never to rotate: retained content equals
        // the full stream, so the windowed reader is comparable too.
        Box::new(WindowedHierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone(), u64::MAX, 4).unwrap()),
        Box::new(
            ShardedHierMatrix::<u64>::new(
                DIM,
                DIM,
                hier_cfg,
                ShardedConfig {
                    partitioner: ShardPartitioner::RowHash,
                    chunk_tuples: chunk,
                    channel_depth: 2,
                    round_tuples: 128,
                    ..ShardedConfig::with_shards(shards)
                },
            )
            .unwrap(),
        ),
        Box::new(HierAssoc::new(
            HierAssocConfig::from_cuts(cuts.to_vec()).unwrap(),
        )),
        Box::new(TabletStore::with_memtable_limit(32)),
        Box::new(ArrayStore::with_chunk_dim(1 << 24)),
        Box::new(RowStore::new()),
        Box::new(DocStore::with_shards(3)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_reader_matches_the_materialized_matrix(
        updates in update_stream(250),
        cuts in cut_schedule(),
        shards in 1usize..=8,
        chunk in 1usize..64,
        flush_at in 0usize..250,
        k in 0usize..10,
    ) {
        let flat = build_flat(&updates);
        let expect_entries = flat.extract_tuples();
        let expect_top = reference_top_k(&flat, k);
        // Probe rows/cells: a present row, a row absent from the stream.
        let probe_row = updates[0].0;
        let absent_row = (61 * 20_000_019) % DIM;
        let (probe_cols, probe_vals) = flat.dcsr().row(probe_row).unwrap();
        let expect_row: Vec<(u64, u64)> = probe_cols
            .iter()
            .copied()
            .zip(probe_vals.iter().copied())
            .collect();
        let expect_reduce: u64 = expect_row.iter().map(|&(_, v)| v).sum();

        for sys in all_systems(&cuts, shards, chunk).iter_mut() {
            let name = sys.reader_name().to_string();
            for (i, &(r, c, v)) in updates.iter().enumerate() {
                sys.insert(r, c, v).unwrap();
                if i == flush_at {
                    // Mid-stream analytics + flush must not disturb the
                    // represented matrix.
                    let _ = sys.read_row_degree(r);
                    sys.flush().unwrap();
                }
            }
            // No trailing flush: readers must answer over pending /
            // staged / in-flight state.
            prop_assert_eq!(sys.read_nnz(), flat.nvals(), "nnz of {}", &name);
            let mut row = Vec::new();
            sys.read_row(probe_row, &mut row);
            prop_assert_eq!(&row, &expect_row, "row extract of {}", &name);
            prop_assert_eq!(
                sys.read_row_degree(probe_row),
                expect_row.len(),
                "degree of {}",
                &name
            );
            prop_assert_eq!(
                sys.read_row_reduce(probe_row),
                Some(expect_reduce),
                "row reduce of {}",
                &name
            );
            sys.read_row(absent_row, &mut row);
            prop_assert!(row.is_empty(), "absent row of {}", &name);
            prop_assert_eq!(sys.read_row_degree(absent_row), 0, "absent degree of {}", &name);
            prop_assert_eq!(sys.read_row_reduce(absent_row), None, "absent reduce of {}", &name);
            let (pc, pv) = (expect_row[0].0, expect_row[0].1);
            prop_assert_eq!(sys.read_get(probe_row, pc), Some(pv), "get of {}", &name);
            prop_assert_eq!(sys.read_get(absent_row, 0), None, "absent get of {}", &name);
            prop_assert_eq!(&sys.read_top_k(k), &expect_top, "top-k of {}", &name);
            let mut entries = (Vec::new(), Vec::new(), Vec::new());
            sys.read_entries(&mut |r, c, v| {
                entries.0.push(r);
                entries.1.push(c);
                entries.2.push(v);
            });
            prop_assert_eq!(&entries, &expect_entries, "entries of {}", &name);
        }
    }
}

/// The graph algorithms run over any reader: spot-check that degree
/// analytics computed straight off a hierarchical matrix (no snapshot)
/// equal those computed from the materialised flat matrix.
#[test]
fn algorithms_over_readers_match_flat() {
    use hyperstream::graphblas::algo::degree::{degree_distribution, row_degree};

    let mut hier =
        HierMatrix::<u64>::new(DIM, DIM, HierConfig::from_cuts(vec![8, 64]).unwrap()).unwrap();
    let mut flat = Matrix::<u64>::new(DIM, DIM);
    for i in 0..3000u64 {
        let (r, c) = ((i % 41) * 1_000_003, (i * 7) % 97);
        hier.update(r, c, 1).unwrap();
        flat.accum_element(r, c, 1).unwrap();
    }
    let hier_deg = row_degree(&mut hier);
    let flat_deg = row_degree(&mut flat);
    assert_eq!(hier_deg.nvals(), flat_deg.nvals());
    for (i, d) in hier_deg.iter() {
        assert_eq!(flat_deg.get(i), Some(d));
    }
    assert_eq!(
        degree_distribution(&mut hier).counts,
        degree_distribution(&mut flat).counts
    );
}
