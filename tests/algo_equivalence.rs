#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Property-based tests (proptest) of the semiring kernels and the graph
//! algorithms built on them: for random update streams, cut schedules,
//! shard counts and mid-stream flushes,
//!
//! * the SPA-based `mxm`/`vxm` kernels must be **byte-identical** to the
//!   retained `*_btree` fallbacks over every semiring (the sorted-scatter
//!   sequence tiebreak reproduces the BTreeMap fold order exactly, so this
//!   holds even for non-commutative ⊗ like `first`);
//! * the cursor-consuming `mxm_reader`/`mxv_reader`/`vxm_reader` entry
//!   points (masked and unmasked) over every `CursorReader` — flat,
//!   hierarchical, sharded, and both snapshot flavours — must be
//!   byte-identical to the flat-oracle kernel over the materialised
//!   matrix; and
//! * `triangle_count` / `bfs_levels` / `connected_components` /
//!   `pagerank` must agree across every system: cursor-native primaries
//!   on the level-slice readers, `*_tuples` fallbacks on the DB-analogue
//!   stores (pagerank to 1e-9; everything else exactly).

use hyperstream::graphblas::algo::{
    bfs_levels, bfs_levels_tuples, connected_components, connected_components_tuples, pagerank,
    pagerank_tuples, triangle_count, triangle_count_tuples,
};
use hyperstream::graphblas::ops::semiring::MinFirst;
use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

/// A stream of updates drawn from a small id pool (to force duplicates and
/// row collisions across hierarchy levels) scattered over the hypersparse
/// index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..60, 0u64..60, 1u64..5), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

/// An arbitrary valid cut schedule (strictly increasing, non-zero).
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..4).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

/// A sparse operand vector over the stream's row ids (deterministic
/// weights, some rows absent so kernels see misses too).
fn operand_vector(updates: &[(u64, u64, u64)]) -> SparseVector<u64> {
    let mut rows: Vec<u64> = updates.iter().map(|&(r, _, _)| r).collect();
    rows.sort_unstable();
    rows.dedup();
    let mut u = SparseVector::<u64>::new(DIM);
    for (i, &r) in rows.iter().enumerate() {
        if i % 3 != 2 {
            u.set(r, 1 + (i as u64 % 7)).unwrap();
        }
    }
    u
}

fn vec_entries(v: &SparseVector<u64>) -> Vec<(u64, u64)> {
    v.iter().collect()
}

/// Every cursor-capable system fed the same updates (with a mid-stream
/// flush), boxed behind the trait the reader kernels consume.
fn cursor_systems(
    updates: &[(u64, u64, u64)],
    cuts: &[u64],
    shards: usize,
    chunk: usize,
    flush_at: usize,
) -> Vec<(String, Box<dyn CursorReader<u64>>)> {
    let hier_cfg = HierConfig::from_cuts(cuts.to_vec()).unwrap();
    let scfg = ShardedConfig {
        partitioner: ShardPartitioner::RowHash,
        chunk_tuples: chunk,
        channel_depth: 2,
        round_tuples: 128,
        ..ShardedConfig::with_shards(shards)
    };
    let mut flat = Matrix::<u64>::new(DIM, DIM);
    let mut hier = HierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone()).unwrap();
    let mut hier_snap = HierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone()).unwrap();
    let mut sharded = ShardedHierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone(), scfg).unwrap();
    let mut sharded_snap = ShardedHierMatrix::<u64>::new(DIM, DIM, hier_cfg, scfg).unwrap();
    for (i, &(r, c, v)) in updates.iter().enumerate() {
        flat.insert(r, c, v).unwrap();
        hier.insert(r, c, v).unwrap();
        hier_snap.insert(r, c, v).unwrap();
        sharded.insert(r, c, v).unwrap();
        sharded_snap.insert(r, c, v).unwrap();
        if i == flush_at {
            // Mid-stream flush on half the systems: readers must answer
            // the same over settled and in-flight state.
            hier.flush().unwrap();
            sharded.flush().unwrap();
        }
    }
    vec![
        (
            "flat".to_string(),
            Box::new(flat) as Box<dyn CursorReader<u64>>,
        ),
        ("hier".to_string(), Box::new(hier)),
        ("hier-snapshot".to_string(), Box::new(hier_snap.snapshot())),
        ("sharded".to_string(), Box::new(sharded)),
        (
            "sharded-snapshot".to_string(),
            Box::new(sharded_snap.snapshot().unwrap()),
        ),
    ]
}

/// The SPA kernels must reproduce the BTreeMap fallbacks byte for
/// byte, over commutative and non-commutative semirings alike.
fn check_spa_vs_btree(a_updates: &[(u64, u64, u64)], b_updates: &[(u64, u64, u64)]) {
    let a = build_flat(a_updates);
    let b = build_flat(b_updates);
    let u = operand_vector(a_updates);

    macro_rules! check {
        ($s:expr, $name:literal) => {
            prop_assert_eq!(
                mxm(&a, &b, $s).extract_tuples(),
                mxm_btree(&a, &b, $s).extract_tuples(),
                concat!("mxm over ", $name)
            );
            prop_assert_eq!(
                vec_entries(&vxm(&u, &a, $s)),
                vec_entries(&vxm_btree(&u, &a, $s)),
                concat!("vxm over ", $name)
            );
        };
    }
    check!(PlusTimes, "plus-times");
    check!(MinPlus, "min-plus");
    check!(MinFirst, "min-first");
}

/// The cursor-consuming entry points (masked and unmasked) over every
/// `CursorReader` must be byte-identical to the flat-oracle kernels.
#[allow(clippy::too_many_arguments)]
fn check_readers_vs_oracle(
    updates: &[(u64, u64, u64)],
    b_updates: &[(u64, u64, u64)],
    cuts: &[u64],
    shards: usize,
    chunk: usize,
    flush_at: usize,
) {
    let flat = build_flat(updates);
    let mut flat_b = build_flat(b_updates);
    let u = operand_vector(updates);
    // Vector mask: the odd-position operand rows; matrix mask: b's
    // pattern (exercises both polarity flags).
    let mut mask_vec = SparseVector::<u64>::new(DIM);
    for (i, (j, _)) in u.iter().enumerate() {
        if i % 2 == 1 {
            mask_vec.set(j, 1).unwrap();
        }
    }

    let mut spa = SpaScratch::<u64>::new();
    let expect_vxm = vec_entries(&vxm(&u, &flat, PlusTimes));
    let expect_vxm_min = vec_entries(&vxm(&u, &flat, MinPlus));
    let expect_mxv = vec_entries(&mxv(&flat, &u, PlusTimes));
    let expect_mxm = mxm(&flat, &flat_b, PlusTimes).extract_tuples();
    // Masked oracles: masking only skips denied outputs, so the
    // answer is the unmasked oracle filtered by the mask.
    let vmask = VectorMask::structural(&mask_vec);
    let vmask_c = VectorMask::<u64>::complement(&mask_vec);
    let expect_vxm_masked: Vec<(u64, u64)> = expect_vxm
        .iter()
        .copied()
        .filter(|&(j, _)| vmask.allows(j))
        .collect();
    let expect_mxv_masked: Vec<(u64, u64)> = expect_mxv
        .iter()
        .copied()
        .filter(|&(i, _)| vmask_c.allows(i))
        .collect();
    let mask_m = build_flat(b_updates);
    let mmask = Mask::structural(&mask_m);
    let expect_mxm_masked = {
        let (r, c, v) = &expect_mxm;
        let mut fr = (Vec::new(), Vec::new(), Vec::new());
        for k in 0..r.len() {
            if mmask.allows(r[k], c[k]) {
                fr.0.push(r[k]);
                fr.1.push(c[k]);
                fr.2.push(v[k]);
            }
        }
        fr
    };

    for (name, mut sys) in cursor_systems(updates, cuts, shards, chunk, flush_at) {
        let got = vxm_reader(&u, sys.as_mut(), PlusTimes, &mut spa).unwrap();
        prop_assert_eq!(vec_entries(&got), expect_vxm.clone(), "vxm of {}", &name);
        let got = vxm_reader(&u, sys.as_mut(), MinPlus, &mut spa).unwrap();
        prop_assert_eq!(
            vec_entries(&got),
            expect_vxm_min.clone(),
            "vxm min-plus of {}",
            &name
        );
        let got = vxm_reader_masked(&u, sys.as_mut(), PlusTimes, &vmask, &mut spa).unwrap();
        prop_assert_eq!(
            vec_entries(&got),
            expect_vxm_masked.clone(),
            "masked vxm of {}",
            &name
        );
        let got = mxv_reader(sys.as_mut(), &u, PlusTimes).unwrap();
        prop_assert_eq!(vec_entries(&got), expect_mxv.clone(), "mxv of {}", &name);
        let got = mxv_reader_masked(sys.as_mut(), &u, PlusTimes, &vmask_c).unwrap();
        prop_assert_eq!(
            vec_entries(&got),
            expect_mxv_masked.clone(),
            "masked mxv of {}",
            &name
        );
        let got = mxm_reader(sys.as_mut(), &mut flat_b, PlusTimes, &mut spa).unwrap();
        prop_assert_eq!(got.extract_tuples(), expect_mxm.clone(), "mxm of {}", &name);
        let got =
            mxm_reader_masked(sys.as_mut(), &mut flat_b, PlusTimes, &mmask, &mut spa).unwrap();
        prop_assert_eq!(
            got.extract_tuples(),
            expect_mxm_masked.clone(),
            "masked mxm of {}",
            &name
        );
    }
}

/// Triangles, BFS, components and pagerank agree across every system:
/// cursor-native primaries on the level readers, `*_tuples` fallbacks
/// on the DB-analogue stores.
fn check_algorithms_agree(
    updates: &[(u64, u64, u64)],
    cuts: &[u64],
    shards: usize,
    chunk: usize,
    flush_at: usize,
) {
    let mut flat = build_flat(updates);
    let source = updates[0].0;
    let expect_tri = triangle_count(&mut flat);
    let expect_bfs = vec_entries(&bfs_levels(&mut flat, source));
    let expect_cc = vec_entries(&connected_components(&mut flat));
    let expect_pr: Vec<(u64, f64)> = pagerank(&mut flat, 0.85, 40, 1e-12).iter().collect();
    let close = |got: &[(u64, f64)]| {
        got.len() == expect_pr.len()
            && got
                .iter()
                .zip(expect_pr.iter())
                .all(|(&(gj, gv), &(ej, ev))| gj == ej && (gv - ev).abs() < 1e-9)
    };

    // Cursor-native primaries over every level-slice reader.
    for (name, mut sys) in cursor_systems(updates, cuts, shards, chunk, flush_at) {
        prop_assert_eq!(
            triangle_count(sys.as_mut()),
            expect_tri,
            "triangles of {}",
            &name
        );
        prop_assert_eq!(
            vec_entries(&bfs_levels(sys.as_mut(), source)),
            expect_bfs.clone(),
            "bfs of {}",
            &name
        );
        prop_assert_eq!(
            vec_entries(&connected_components(sys.as_mut())),
            expect_cc.clone(),
            "components of {}",
            &name
        );
        let pr: Vec<(u64, f64)> = pagerank(sys.as_mut(), 0.85, 40, 1e-12).iter().collect();
        prop_assert!(close(&pr), "pagerank of {}: {:?}", &name, pr);
    }

    // Tuple fallbacks over every sink system, DB analogues included.
    let hier_cfg = HierConfig::from_cuts(cuts.to_vec()).unwrap();
    let mut systems: Vec<Box<dyn StreamingSystem<u64>>> = vec![
        Box::new(Matrix::<u64>::new(DIM, DIM)),
        Box::new(HierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone()).unwrap()),
        Box::new(WindowedHierMatrix::<u64>::new(DIM, DIM, hier_cfg.clone(), u64::MAX, 4).unwrap()),
        Box::new(
            ShardedHierMatrix::<u64>::new(
                DIM,
                DIM,
                hier_cfg,
                ShardedConfig {
                    partitioner: ShardPartitioner::RowHash,
                    chunk_tuples: chunk,
                    channel_depth: 2,
                    round_tuples: 128,
                    ..ShardedConfig::with_shards(shards)
                },
            )
            .unwrap(),
        ),
        Box::new(HierAssoc::new(
            HierAssocConfig::from_cuts(cuts.to_vec()).unwrap(),
        )),
        Box::new(TabletStore::with_memtable_limit(32)),
        Box::new(ArrayStore::with_chunk_dim(1 << 24)),
        Box::new(RowStore::new()),
        Box::new(DocStore::with_shards(3)),
    ];
    for sys in systems.iter_mut() {
        let name = sys.reader_name().to_string();
        for &(r, c, v) in updates {
            sys.insert(r, c, v).unwrap();
        }
        let r = sys.as_mut();
        prop_assert_eq!(
            triangle_count_tuples(r),
            expect_tri,
            "tuple triangles of {}",
            &name
        );
        prop_assert_eq!(
            vec_entries(&bfs_levels_tuples(r, source)),
            expect_bfs.clone(),
            "tuple bfs of {}",
            &name
        );
        prop_assert_eq!(
            vec_entries(&connected_components_tuples(r)),
            expect_cc.clone(),
            "tuple components of {}",
            &name
        );
        let pr: Vec<(u64, f64)> = pagerank_tuples(r, 0.85, 40, 1e-12).iter().collect();
        prop_assert!(close(&pr), "tuple pagerank of {}: {:?}", &name, pr);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn spa_kernels_match_btree_fallbacks(
        a_updates in update_stream(200),
        b_updates in update_stream(200),
    ) {
        check_spa_vs_btree(&a_updates, &b_updates);
    }

    #[test]
    fn reader_kernels_match_flat_oracle(
        updates in update_stream(200),
        b_updates in update_stream(100),
        cuts in cut_schedule(),
        shards in 1usize..=8,
        chunk in 1usize..64,
        flush_at in 0usize..200,
    ) {
        check_readers_vs_oracle(&updates, &b_updates, &cuts, shards, chunk, flush_at);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn algorithms_agree_across_all_systems(
        updates in update_stream(150),
        cuts in cut_schedule(),
        shards in 1usize..=8,
        chunk in 1usize..64,
        flush_at in 0usize..150,
    ) {
        check_algorithms_agree(&updates, &cuts, shards, chunk, flush_at);
    }
}
