//! Property-based equivalence of the skew-aware merge kernels: the
//! adaptive dispatch (bulk row copies, galloped skips, branchless
//! two-pointer) must produce **byte-identical** DCSR planes to the
//! element-at-a-time linear kernel it replaced, across the three public
//! merge entry points, for operand size ratios from 1:1 to 1:10⁴ and for
//! every overlap pattern (disjoint, interleaved, nested, identical) —
//! including the order-sensitive `First`/`Second`, which pin the
//! `op.apply(a, b)` operand order on collisions regardless of which side
//! the kernel gallops through.  Both kernels are also checked against an
//! independent model (a `BTreeMap` ⊕-fold).

use hyperstream_graphblas::formats::coo::Coo;
use hyperstream_graphblas::formats::dcsr::Dcsr;
use hyperstream_graphblas::merge_kernel_stats;
use hyperstream_graphblas::ops::binary::{First, Max, Min, Plus, Second};
use hyperstream_graphblas::ops::BinaryOp;
use hyperstream_graphblas::MergeScratch;
use proptest::prelude::*;
use std::collections::BTreeMap;

const DIM: u64 = 1 << 32;

/// Deterministic 64-bit mix for coordinate jitter.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Build the large operand: `na` entries, 16 columns per (even) row,
/// hash-jittered column gaps.
fn a_tuples(na: usize, salt: u64) -> Vec<(u64, u64, u64)> {
    (0..na)
        .map(|i| {
            let row = 2 * (i as u64 / 16);
            let col = 8 * (i as u64 % 16) + mix(salt ^ i as u64) % 7;
            (row, col, 1 + mix(salt ^ i as u64) % 1000)
        })
        .collect()
}

/// Build the small operand from the large one under one overlap pattern:
/// 0 = disjoint rows, 1 = shared rows with interleaved columns,
/// 2 = nested (coordinates inside `A`'s span, collisions and gaps mixed),
/// 3 = identical coordinates (every entry collides).
fn b_tuples(a: &[(u64, u64, u64)], nb: usize, pattern: u8, salt: u64) -> Vec<(u64, u64, u64)> {
    (0..nb)
        .map(|k| {
            let h = mix(salt.wrapping_add(0xD1B5_4A32) ^ k as u64);
            let (ar, ac, _) = a[(h % a.len() as u64) as usize];
            let v = 1 + (h >> 32) % 1000;
            match pattern {
                0 => (ar + 1, ac, v),
                1 => (ar, ac * 2 + 1, v),
                2 => {
                    if h & 1 == 0 {
                        (ar, ac, v)
                    } else {
                        (ar, ac + 1 + h % 3, v)
                    }
                }
                _ => (ar, ac, v),
            }
        })
        .collect()
}

/// Reference merge: fold `b` into `a`'s map with `op` (`a` is always the
/// left operand, matching the documented ⊕ collision order).
fn model<Op: BinaryOp<u64>>(a: &Dcsr<u64>, b: &Dcsr<u64>, op: Op) -> Vec<(u64, u64, u64)> {
    let mut m: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let (ar, ac, av) = a.extract_tuples();
    for i in 0..ar.len() {
        m.insert((ar[i], ac[i]), av[i]);
    }
    let (br, bc, bv) = b.extract_tuples();
    for i in 0..br.len() {
        m.entry((br[i], bc[i]))
            .and_modify(|acc| *acc = op.apply(*acc, bv[i]))
            .or_insert(bv[i]);
    }
    m.into_iter().map(|((r, c), v)| (r, c, v)).collect()
}

fn build(tuples: &[(u64, u64, u64)]) -> Dcsr<u64> {
    let mut coo = Coo::new(DIM, DIM);
    for &(r, c, v) in tuples {
        coo.push(r, c, v);
    }
    // Duplicate construction collisions fold under Second so the operand
    // itself is well-defined before the merge under test.
    Dcsr::from_coo(coo, Second).expect("valid operand")
}

/// All three public merge entry points, adaptive vs forced-linear, under
/// one op; every output must be byte-identical and match the model.
fn check_op<Op: BinaryOp<u64>>(a: &Dcsr<u64>, b: &Dcsr<u64>, op: Op, name: &str) {
    let merged = a.merge(b, op).expect("same dims");
    let linear = a.merge_linear(b, op).expect("same dims");
    assert_eq!(merged.raw_parts(), linear.raw_parts(), "merge: {name}");

    let expect = model(a, b, op);
    let (mr, mc, mv) = merged.extract_tuples();
    let got: Vec<(u64, u64, u64)> = (0..mr.len()).map(|i| (mr[i], mc[i], mv[i])).collect();
    assert_eq!(got, expect, "merge vs model: {name}");

    let mut into = a.clone();
    let mut scratch = MergeScratch::new();
    into.merge_into(b, op, &mut scratch).expect("same dims");
    assert_eq!(into.raw_parts(), merged.raw_parts(), "merge_into: {name}");

    let mut into_lin = a.clone();
    into_lin
        .merge_into_linear(b, op, &mut scratch)
        .expect("same dims");
    assert_eq!(
        into_lin.raw_parts(),
        merged.raw_parts(),
        "merge_into_linear: {name}"
    );

    let coo = b.to_coo();
    let mut from_coo = a.clone();
    from_coo
        .merge_sorted_coo_into(&coo, op, &mut scratch)
        .expect("same dims");
    assert_eq!(
        from_coo.raw_parts(),
        merged.raw_parts(),
        "merge_sorted_coo_into: {name}"
    );

    let mut from_coo_lin = a.clone();
    from_coo_lin
        .merge_sorted_coo_into_linear(&coo, op, &mut scratch)
        .expect("same dims");
    assert_eq!(
        from_coo_lin.raw_parts(),
        merged.raw_parts(),
        "merge_sorted_coo_into_linear: {name}"
    );
}

fn check_all_ops(na: usize, ratio: usize, pattern: u8, salt: u64) {
    let at = a_tuples(na, salt);
    let bt = b_tuples(&at, (na / ratio).max(1), pattern, salt);
    let a = build(&at);
    let b = build(&bt);
    check_op(&a, &b, Plus, "Plus");
    check_op(&a, &b, Second, "Second");
    check_op(&a, &b, First, "First");
    check_op(&a, &b, Min, "Min");
    check_op(&a, &b, Max, "Max");
    // The merge is not symmetric in the operand roles (the adaptive
    // dispatch gallops whichever side is larger): drive the mirrored
    // orientation too, so the small-side-left case is pinned.
    check_op(&b, &a, Plus, "Plus (mirrored)");
    check_op(&b, &a, First, "First (mirrored)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Size ratios 1:1 through 1:10^4, every overlap pattern, every
    // accumulate op: adaptive output must be byte-identical to the linear
    // kernel and to the model.
    #[test]
    fn adaptive_merges_equal_linear(
        na in 64usize..500,
        ratio_pow in 0u32..5,
        pattern in 0u8..4,
        salt in 0u64..u64::MAX,
    ) {
        check_all_ops(na, 10usize.pow(ratio_pow), pattern, salt);
    }

    // Dense-collision stress: both operands share most coordinates so the
    // collision arm of every kernel (branchless fused select included)
    // carries the bulk of the output.
    #[test]
    fn identical_coordinate_merges(na in 16usize..300, salt in 0u64..u64::MAX) {
        check_all_ops(na, 1, 3, salt);
    }
}

// A skewed colliding-row merge must go through the gallop kernel and a
// partially-overlapping one through the bulk row copy — observed via the
// process-global strategy counters.  Other tests merge concurrently, so
// only monotone growth is asserted.
#[test]
fn skewed_merge_gallops_and_disjoint_rows_bulk_copy() {
    let at = a_tuples(4096, 7);
    let a = build(&at);

    let before = merge_kernel_stats();
    let bt = b_tuples(&at, 4, 1, 7); // shared rows, interleaved: per-row skew ~512:1
    let b = build(&bt);
    let merged = a.merge(&b, Plus).expect("same dims");
    assert!(merged.nvals() >= a.nvals());
    let after = merge_kernel_stats();
    assert!(
        after.galloped_elems > before.galloped_elems,
        "skewed colliding-row merge must gallop (before {}, after {})",
        before.galloped_elems,
        after.galloped_elems
    );

    let before = merge_kernel_stats();
    let ct = b_tuples(&at, 64, 0, 7); // disjoint rows only
    let c = build(&ct);
    let merged = a.merge(&c, Plus).expect("same dims");
    assert_eq!(merged.nvals(), a.nvals() + c.nvals());
    let after = merge_kernel_stats();
    assert!(
        after.bulk_row_elems > before.bulk_row_elems,
        "disjoint-row merge must bulk-copy rows (before {}, after {})",
        before.bulk_row_elems,
        after.bulk_row_elems
    );
}
