#![recursion_limit = "512"] // the proptest macro expansion is token-heavy

//! Crash-consistency suite for the durable hierarchy (`crates/hier/src/persist`).
//!
//! The oracle contract under test: after *any* interruption — a clean
//! drop, a simulated process kill (`std::mem::forget`, which skips the
//! `Drop` WAL sync), a WAL torn at an arbitrary byte, or an injected
//! failure at any persistence failpoint — reopening the directory must
//!
//! * succeed (recovery never needs a repair tool),
//! * reproduce the flat-oracle contents of some *acknowledged prefix* of
//!   the update stream (no silent loss of fsynced data, no invented
//!   entries), and
//! * report what it did ([`RecoveryReport`]) instead of guessing
//!   silently.
//!
//! The failpoint-armed cases live behind `--features failpoints` (the
//! registry is process-global, so they serialise through [`exclusive`]);
//! everything else runs in the default test sweep.

use hyperstream::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const DIM: u64 = 1 << 32;

/// Unique-per-test scratch directory, removed on drop (kept on panic so a
/// failing case leaves its evidence behind).
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p =
            std::env::temp_dir().join(format!("hs-crash-{}-{}-{}", std::process::id(), name, n));
        let _ = std::fs::remove_dir_all(&p);
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn small_cuts() -> HierConfig {
    HierConfig::from_cuts(vec![8, 64]).unwrap()
}

/// Flat oracle: the represented matrix of an update prefix as a sum map.
fn oracle(updates: &[(u64, u64, u64)]) -> BTreeMap<(u64, u64), u64> {
    let mut m = BTreeMap::new();
    for &(r, c, v) in updates {
        *m.entry((r, c)).or_insert(0) += v;
    }
    m
}

fn contents(m: &HierMatrix<u64>) -> BTreeMap<(u64, u64), u64> {
    let (r, c, v) = m.materialize_ref().extract_tuples();
    let mut out = BTreeMap::new();
    for i in 0..r.len() {
        *out.entry((r[i], c[i])).or_insert(0) += v[i];
    }
    out
}

/// A stream of updates drawn from a small id pool (duplicates included,
/// so `⊕` accumulation is actually exercised) scattered over the
/// hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..120, 0u64..120, 1u64..5), 32..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

fn the_wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    assert_eq!(wals.len(), 1, "exactly one live WAL expected");
    wals.pop().unwrap()
}

// ---------------------------------------------------------------------
// Clean-path round trips.
// ---------------------------------------------------------------------

#[test]
fn clean_reopen_after_flush_replays_nothing() {
    let dir = TempDir::new("clean-flush");
    let updates: Vec<(u64, u64, u64)> = (0..300u64)
        .map(|i| ((i * 7) % 97, (i * 13) % 89, 1 + i % 3))
        .collect();
    let mut m =
        HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
            .unwrap();
    for &(r, c, v) in &updates {
        m.update(r, c, v).unwrap();
    }
    m.flush().unwrap();
    let want = contents(&m);
    drop(m);

    let r = HierMatrix::<u64>::open(dir.path()).unwrap();
    assert_eq!(contents(&r), want);
    assert_eq!(want, oracle(&updates));
    let rep = r.recovery_report().unwrap();
    assert_eq!(rep.wal_records_replayed, 0, "flush checkpointed everything");
    assert!(!rep.torn_tail_truncated);
    assert!(rep.corrupt_levels.is_empty());
}

/// Regression test for the `Drop` impl: an orderly drop fsyncs the WAL
/// tail, so a reopen after a clean shutdown — even without a flush — must
/// replay the tail *without* reporting a torn frame.
#[test]
fn clean_drop_without_flush_leaves_no_torn_tail() {
    let dir = TempDir::new("clean-drop");
    let updates: Vec<(u64, u64, u64)> = (0..50u64).map(|i| (i % 11, i % 7, 1)).collect();
    let mut m = HierMatrix::<u64>::new_durable(
        DIM,
        DIM,
        small_cuts(),
        // `Never` means only `Drop` stands between the tail and loss.
        DurableConfig::new(dir.path()).fsync(FsyncPolicy::Never),
    )
    .unwrap();
    for &(r, c, v) in &updates {
        m.update(r, c, v).unwrap();
    }
    let want = contents(&m);
    drop(m);

    let r = HierMatrix::<u64>::open(dir.path()).unwrap();
    assert_eq!(contents(&r), want);
    let rep = r.recovery_report().unwrap();
    assert!(!rep.torn_tail_truncated, "clean drop must not tear the WAL");
    assert!(rep.wal_records_replayed > 0, "tail was never checkpointed");
}

#[test]
fn simulated_kill_recovers_every_fsynced_batch() {
    let dir = TempDir::new("kill");
    let updates: Vec<(u64, u64, u64)> = (0..200u64)
        .map(|i| ((i * 3) % 31, (i * 5) % 29, 1 + i % 2))
        .collect();
    let mut m =
        HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
            .unwrap();
    for &(r, c, v) in &updates {
        m.update(r, c, v).unwrap();
    }
    let want = contents(&m);
    // Simulated crash: skip Drop's WAL sync.  Every update was
    // individually fsynced (`EveryBatch`), so nothing may be lost.
    std::mem::forget(m);

    let mut r = HierMatrix::<u64>::open(dir.path()).unwrap();
    assert_eq!(contents(&r), want);
    // The store stays writable: keep ingesting, flush, reopen again.
    r.update(7, 7, 100).unwrap();
    r.flush().unwrap();
    let want2 = contents(&r);
    drop(r);
    let r2 = HierMatrix::<u64>::open(dir.path()).unwrap();
    assert_eq!(contents(&r2), want2);
}

#[test]
fn reopen_is_o_levels_not_o_nnz_reingest() {
    // Structural check on the recovery path: after a flush, reopen must
    // replay zero WAL records whatever the entry count — the levels come
    // back as whole files, not as re-ingested tuples.
    for n in [100u64, 2000] {
        let dir = TempDir::new("olevels");
        let mut m =
            HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
                .unwrap();
        for i in 0..n {
            m.update((i * 11) % 503, (i * 17) % 499, 1).unwrap();
        }
        m.flush().unwrap();
        let want = contents(&m);
        drop(m);
        let r = HierMatrix::<u64>::open(dir.path()).unwrap();
        assert_eq!(r.recovery_report().unwrap().wal_records_replayed, 0);
        assert_eq!(contents(&r), want);
    }
}

#[test]
fn new_durable_refuses_an_initialised_directory() {
    let dir = TempDir::new("refuse");
    let m = HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
        .unwrap();
    drop(m);
    let again =
        HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()));
    assert!(matches!(again, Err(GrbError::InvalidValue(_))));
    // open_or_create takes the reopen path instead.
    let reopened =
        HierMatrix::<u64>::open_or_create(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()));
    assert!(reopened.is_ok());
    // ... but refuses mismatched geometry.
    let wrong = HierMatrix::<u64>::open_or_create(
        DIM,
        DIM,
        HierConfig::from_cuts(vec![16, 256]).unwrap(),
        DurableConfig::new(dir.path()),
    );
    assert!(matches!(wrong, Err(GrbError::InvalidValue(_))));
}

#[test]
fn scalar_type_mismatch_is_typed_corruption() {
    let dir = TempDir::new("tag");
    let m = HierMatrix::<f64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
        .unwrap();
    drop(m);
    match HierMatrix::<u64>::open(dir.path()) {
        Err(GrbError::Corruption { detail }) => {
            assert!(detail.contains("type tag"), "unhelpful detail: {detail}")
        }
        other => panic!("expected Corruption, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Corrupt level files: strict refusal vs. salvage.
// ---------------------------------------------------------------------

#[test]
fn corrupt_level_strict_open_fails_salvage_reports() {
    let dir = TempDir::new("corrupt-lvl");
    let mut m =
        HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
            .unwrap();
    for i in 0..500u64 {
        m.update((i * 7) % 211, (i * 3) % 223, 1).unwrap();
    }
    m.flush().unwrap();
    drop(m);

    // Flip one byte in the middle of a level file's data pages.
    let lvl = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("lvl-"))
        })
        .expect("flush must have produced a level file");
    let mut bytes = std::fs::read(&lvl).unwrap();
    let mid = 4096 + (bytes.len() - 4096) / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&lvl, &bytes).unwrap();

    // Strict (default) open: typed corruption, no panic.
    match HierMatrix::<u64>::open(dir.path()) {
        Err(GrbError::Corruption { .. }) => {}
        other => panic!("expected Corruption, got {other:?}"),
    }

    // Salvage open: succeeds, the bad level loads empty and is reported.
    let r = HierMatrix::<u64>::open_with(DurableConfig::new(dir.path()).salvage(true)).unwrap();
    let rep = r.recovery_report().unwrap().clone();
    assert!(
        !rep.corrupt_levels.is_empty(),
        "salvage must report the loss"
    );
    drop(r);
    // The salvage open rewrites nothing until a checkpoint; reopening
    // strictly still fails, proving salvage did not quietly "repair" the
    // store by dropping data.
    assert!(HierMatrix::<u64>::open(dir.path()).is_err());
}

// ---------------------------------------------------------------------
// Torn-WAL property: a cut at ANY byte recovers an exact update prefix.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wal_cut_at_any_byte_recovers_an_update_prefix(
        updates in update_stream(200),
        cut_ppm in 0u64..1_000_000,
    ) {
        let dir = TempDir::new("wal-cut");
        let mut m = HierMatrix::<u64>::new_durable(
            DIM, DIM, small_cuts(), DurableConfig::new(dir.path()),
        ).unwrap();
        for &(r, c, v) in &updates {
            m.update(r, c, v).unwrap();
        }
        std::mem::forget(m);

        // Cut the live WAL at an arbitrary point past its header (the
        // header is fsynced before the manifest ever references the file,
        // so a referenced WAL always has one).
        let wal = the_wal_file(dir.path());
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = 16 + (len.saturating_sub(16)) * cut_ppm / 1_000_000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();

        // Reopen must succeed and equal the oracle of SOME update prefix:
        // the checkpointed levels plus however many whole frames survived
        // the cut.  Anything else — a partial frame applied, an entry
        // invented, a fsynced checkpoint lost — is a bug.
        let r = HierMatrix::<u64>::open(dir.path()).unwrap();
        let got = contents(&r);
        let matched = (0..=updates.len())
            .map(|k| oracle(&updates[..k]))
            .any(|want| want == got);
        prop_assert!(matched, "recovered state is not any update prefix");
    }
}

// ---------------------------------------------------------------------
// Sharded engine: durable shards round-trip through a full engine drop.
// ---------------------------------------------------------------------

#[test]
fn sharded_durable_engine_reopens_every_shard() {
    let dir = TempDir::new("sharded");
    let updates: Vec<(u64, u64, u64)> = (0..800u64)
        .map(|i| ((i * 2_654_435_761) % DIM, (i * 40_503) % DIM, 1 + i % 4))
        .collect();
    let mk = || {
        ShardedHierMatrix::<u64>::new_durable(
            DIM,
            DIM,
            small_cuts(),
            ShardedConfig::with_shards(3),
            DurableConfig::new(dir.path()),
        )
    };
    let mut e = mk().unwrap();
    assert!(e.is_durable());
    assert!(
        e.shard_recovery_reports().iter().all(Option::is_none),
        "fresh stores have no recovery to report"
    );
    for &(r, c, v) in &updates {
        e.update(r, c, v).unwrap();
    }
    e.flush().unwrap();
    let (wr, wc, wv) = e.materialize().unwrap().extract_tuples();
    drop(e);

    let mut e2 = mk().unwrap();
    let reports = e2.shard_recovery_reports();
    assert_eq!(reports.len(), 3);
    assert!(
        reports.iter().all(Option::is_some),
        "every shard was reopened, not recreated"
    );
    let (gr, gc, gv) = e2.materialize().unwrap().extract_tuples();
    assert_eq!((wr, wc, wv), (gr, gc, gv));
}

// ---------------------------------------------------------------------
// Failpoint-armed crash injection (process-global registry: serialised).
// ---------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod failpoint_crashes {
    use super::*;
    use hyperstream::hier::failpoint::{self, FailAction};

    /// Global test-order lock: held for the duration of any test that
    /// arms failpoints; disarms everything on release, even on panic.
    static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    struct Exclusive(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    impl Drop for Exclusive {
        fn drop(&mut self) {
            failpoint::disarm_all();
        }
    }

    fn exclusive() -> Exclusive {
        let guard = REGISTRY_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        failpoint::disarm_all();
        Exclusive(guard)
    }

    /// Every fallible persistence site, in WAL-append → checkpoint order.
    const SITES: [&str; 6] = [
        "persist-wal-append",
        "persist-partial-write",
        "persist-pre-fsync",
        "persist-post-fsync",
        "persist-mid-rename",
        "persist-manifest-swap",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(36))]

        // The tentpole property: crash (injected error + simulated
        // kill) at EVERY persistence site, on a random schedule, and the
        // reopened store must equal the acknowledged prefix — plus at
        // most the single in-flight update whose durability the crash
        // interrupted mid-acknowledgement.
        #[test]
        fn crash_at_any_persistence_site_recovers_acked_prefix(
            site in 0usize..6,
            nth in 1u64..20,
            updates in update_stream(160),
        ) {
            let _x = exclusive();
            let dir = TempDir::new("site-crash");
            let mut m = HierMatrix::<u64>::new_durable(
                DIM, DIM, small_cuts(), DurableConfig::new(dir.path()),
            ).unwrap();
            failpoint::arm(SITES[site], nth, FailAction::Error);
            let mut acked = 0usize;
            let mut failed = false;
            for &(r, c, v) in &updates {
                match m.update(r, c, v) {
                    Ok(()) => acked += 1,
                    Err(_) => { failed = true; break; }
                }
            }
            failpoint::disarm_all();
            std::mem::forget(m);

            // Reopen must ALWAYS succeed, whatever torn state the
            // injected failure left behind.
            let mut r = HierMatrix::<u64>::open(dir.path()).unwrap();
            let got = contents(&r);
            // Zero silent loss: every acknowledged update is present.
            // The failed update may or may not have become durable before
            // its error surfaced (e.g. an fsync that happened but whose
            // site then reported failure) — both outcomes are honest.
            let lo = oracle(&updates[..acked]);
            let hi = oracle(&updates[..(acked + usize::from(failed)).min(updates.len())]);
            prop_assert!(
                got == lo || got == hi,
                "site {} nth {}: recovered neither the acked prefix ({}) nor acked+1",
                SITES[site], nth, acked,
            );

            // The reopened store must be fully serviceable.
            r.update(3, 3, 7).unwrap();
            r.flush().unwrap();
            let want2 = contents(&r);
            drop(r);
            let r2 = HierMatrix::<u64>::open(dir.path()).unwrap();
            prop_assert_eq!(contents(&r2), want2);
        }
    }

    /// A WAL-append failure must reject the update *atomically*: the
    /// in-memory matrix stays on the pre-update state (log-before-apply),
    /// and the store keeps working once the fault clears.
    #[test]
    fn wal_append_failure_rejects_update_atomically() {
        let _x = exclusive();
        let dir = TempDir::new("append-fail");
        let mut m =
            HierMatrix::<u64>::new_durable(DIM, DIM, small_cuts(), DurableConfig::new(dir.path()))
                .unwrap();
        m.update(1, 1, 10).unwrap();
        let before = contents(&m);
        failpoint::arm("persist-wal-append", 1, FailAction::Error);
        assert!(matches!(m.update(2, 2, 20), Err(GrbError::Injected(_))));
        assert_eq!(contents(&m), before, "rejected update must not apply");
        failpoint::disarm_all();
        m.update(3, 3, 30).unwrap();
        m.flush().unwrap();
        let want = contents(&m);
        drop(m);
        let r = HierMatrix::<u64>::open(dir.path()).unwrap();
        assert_eq!(contents(&r), want);
        assert!(!want.contains_key(&(2, 2)));
    }

    /// Durable sharded engine: a worker killed mid-cascade respawns from
    /// its on-disk store — `ShardRecovery::disk` reports the reopen, the
    /// checkpointed prefix survives, and the engine returns to healthy.
    #[test]
    fn durable_engine_respawns_lost_shard_from_disk() {
        let _x = exclusive();
        quiet_failpoint_panics();
        let dir = TempDir::new("respawn");
        let mut e = ShardedHierMatrix::<u64>::new_durable(
            DIM,
            DIM,
            small_cuts(),
            ShardedConfig::with_shards(2),
            DurableConfig::new(dir.path()),
        )
        .unwrap();
        for i in 0..400u64 {
            e.update((i * 2_654_435_761) % DIM, i % 50, 1).unwrap();
        }
        e.flush().unwrap();
        let before = {
            let (r, c, v) = e.materialize().unwrap().extract_tuples();
            let mut m = BTreeMap::new();
            for i in 0..r.len() {
                *m.entry((r[i], c[i])).or_insert(0u64) += v[i];
            }
            m
        };

        // Kill whichever worker cascades next, then drive until the
        // engine notices the loss.
        failpoint::arm("hier-cascade", 1, FailAction::Panic);
        let mut saw_loss = false;
        for i in 0..2000u64 {
            let r = e.update((i * 2_654_435_761) % DIM, i % 50, 1);
            if r.is_err() || e.flush().is_err() {
                saw_loss = true;
                break;
            }
        }
        assert!(saw_loss, "the armed cascade panic never killed a worker");
        failpoint::disarm_all();

        let lost = match e.health() {
            EngineHealth::Degraded { lost } => lost,
            h => panic!("expected a degraded engine, got {h:?}"),
        };
        for i in lost {
            let rec = e.respawn_shard(i).unwrap();
            assert_eq!(rec.shard, i);
            assert_eq!(
                rec.replayed_tuples, 0,
                "durable respawn must not double-apply"
            );
            let disk = rec.disk.expect("durable respawn reports the disk reopen");
            assert!(disk.levels_loaded > 0 || disk.wal_records_replayed > 0);
        }
        assert_eq!(e.health(), EngineHealth::Healthy);
        e.flush().unwrap();
        let after = {
            let (r, c, v) = e.materialize().unwrap().extract_tuples();
            let mut m = BTreeMap::new();
            for i in 0..r.len() {
                *m.entry((r[i], c[i])).or_insert(0u64) += v[i];
            }
            m
        };
        // The checkpointed prefix is a pointwise lower bound: `⊕` only
        // accumulates, so recovery may add post-checkpoint updates but can
        // never shrink below what `flush` made durable.
        for (k, v) in &before {
            assert!(
                after.get(k).is_some_and(|got| got >= v),
                "entry {k:?} shrank below the checkpointed value"
            );
        }
    }

    /// Injected worker panics are the *point* of this suite; silence
    /// their default backtrace spew while leaving other panics loud.
    fn quiet_failpoint_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let msg = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !msg.contains("failpoint") {
                    previous(info);
                }
            }));
        });
    }
}
