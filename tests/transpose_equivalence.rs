#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Property-based tests of the column/transpose read path: for random
//! update streams, cut schedules, shard counts and window rotations, every
//! column answer — column extract, column degree, column reduce, in-degree
//! top-k, in-degree histogram, column-band scan — must be byte-identical
//! to the retained cursor-sweep fallback *and* to the row-side answer of a
//! transposed flat matrix built from the same stream.  Snapshots taken
//! mid-stream must keep answering the captured state no matter how far the
//! source streams on.

use hyperstream::prelude::*;
use proptest::prelude::*;

const DIM: u64 = 1 << 32;

// A stream from a small id pool (duplicates + cross-level collisions)
// scattered over the hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..48, 0u64..48, 1u64..5), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

// An arbitrary valid cut schedule (strictly increasing, non-zero).
fn cut_schedule() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..64, 1usize..4).prop_map(|deltas| {
        let mut acc = 0u64;
        deltas
            .into_iter()
            .map(|d| {
                acc += d;
                acc
            })
            .collect()
    })
}

/// The transpose oracle: the same stream accumulated with coordinates
/// swapped, so its *row* answers are the expected *column* answers.
fn build_transposed(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(c, r, v).unwrap();
    }
    m.wait();
    m
}

// Reference ranking (degree descending, id ascending) from a flat matrix;
// on the transposed oracle this is the in-degree top-k.
fn reference_top_k(flat: &Matrix<u64>, k: usize) -> Vec<(u64, usize)> {
    let d = flat.dcsr();
    let mut degs: Vec<(u64, usize)> = (0..d.nrows_nonempty())
        .map(|slot| (d.row_ids()[slot], d.row_slot(slot).0.len()))
        .collect();
    degs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    degs.truncate(k);
    degs
}

/// Column-band entries of the transposed oracle, swapped back to
/// original (row, col, val) coordinates — (col, row)-major, the
/// `read_col_range` contract.
fn reference_col_band(transposed: &Matrix<u64>, lo: u64, hi: u64) -> Vec<(u64, u64, u64)> {
    transposed
        .iter_settled()
        .filter(|&(c, _, _)| c >= lo && c < hi)
        .map(|(c, r, v)| (r, c, v))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn hier_column_twin_matches_sweep_and_transposed_flat(
        updates in update_stream(300),
        cuts in cut_schedule(),
        flush_at in 0usize..300,
        k in 0usize..12,
    ) {
        let transposed = build_transposed(&updates);
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let mut hier = HierMatrix::<u64>::new(DIM, DIM, cfg).unwrap();
        let mut snap = None;
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            hier.update(r, c, v).unwrap();
            if i == flush_at {
                // Mid-stream: a column query (activating the twin early),
                // a snapshot, then a flush — none may disturb the stream,
                // and the snapshot must freeze here.
                let _ = hier.read_in_top_k(3);
                snap = Some((hier.snapshot(), i));
                hier.flush().unwrap();
            }
        }
        // Twin-served answers == cursor-sweep fallback == transposed flat.
        prop_assert_eq!(hier.read_in_top_k(k), hier.sweep_in_top_k(k));
        prop_assert_eq!(hier.read_in_top_k(k), reference_top_k(&transposed, k));
        prop_assert_eq!(
            hier.read_in_degree_histogram(),
            hier.sweep_in_degree_histogram()
        );
        prop_assert_eq!(
            hier.read_in_degree_histogram(),
            {
                let mut t = transposed.clone();
                t.read_degree_histogram()
            }
        );
        for probe in [updates[0].1, (49 * 40_000_003) % DIM] {
            let mut got = Vec::new();
            hier.read_col(probe, &mut got);
            let mut swept = Vec::new();
            hier.sweep_col(probe, &mut swept);
            prop_assert_eq!(&got, &swept);
            let mut expect = Vec::new();
            {
                let mut t = transposed.clone();
                t.read_row(probe, &mut expect);
            }
            prop_assert_eq!(&got, &expect);
            prop_assert_eq!(hier.read_col_degree(probe), hier.sweep_col_degree(probe));
            prop_assert_eq!(hier.read_col_degree(probe), expect.len());
            prop_assert_eq!(hier.read_col_reduce(probe), hier.sweep_col_reduce(probe));
        }
        // Column-band scans equal the transposed entries swapped back.
        let (lo, hi) = (updates[0].1.min(updates[updates.len() - 1].1),
                        updates[0].1.max(updates[updates.len() - 1].1) + 1);
        let mut got = Vec::new();
        hier.read_col_range(lo, hi, &mut |r, c, v| got.push((r, c, v)));
        let mut swept = Vec::new();
        hier.sweep_col_range(lo, hi, &mut |r, c, v| swept.push((r, c, v)));
        prop_assert_eq!(&got, &swept);
        prop_assert_eq!(got, reference_col_band(&transposed, lo, hi));
        // Batched reads agree with their single-key loops.
        let rows: Vec<u64> = updates.iter().take(6).map(|&(r, _, _)| r).collect();
        let singles: Vec<Vec<(u64, u64)>> = rows.iter().map(|&r| {
            let mut out = Vec::new();
            hier.read_row(r, &mut out);
            out
        }).collect();
        prop_assert_eq!(hier.read_rows(&rows), singles);
        let keys: Vec<(u64, u64)> = updates.iter().take(6).map(|&(r, c, _)| (r, c)).collect();
        let points: Vec<Option<u64>> =
            keys.iter().map(|&(r, c)| hier.read_get(r, c)).collect();
        prop_assert_eq!(hier.read_get_many(&keys), points);
        // The mid-stream snapshot still answers the captured prefix.
        if let Some((mut snap, at)) = snap {
            let prefix = build_transposed(&updates[..=at]);
            prop_assert_eq!(snap.read_in_top_k(5), reference_top_k(&prefix, 5));
            let probe = updates[0].1;
            let mut got = Vec::new();
            snap.read_col(probe, &mut got);
            let mut expect = Vec::new();
            {
                let mut p = prefix.clone();
                p.read_row(probe, &mut expect);
            }
            prop_assert_eq!(got, expect);
            prop_assert_eq!(snap.read_col_degree(probe), expect.len());
        }
    }

    #[test]
    fn sharded_column_pushdown_matches_transposed_flat(
        updates in update_stream(300),
        cuts in cut_schedule(),
        shards in 1usize..=8,
        chunk in 1usize..64,
        flush_at in 0usize..300,
        k in 0usize..12,
        partitioner_sel in 0u64..2,
    ) {
        let transposed = build_transposed(&updates);
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let partitioner = if partitioner_sel == 1 {
            ShardPartitioner::RowRange
        } else {
            ShardPartitioner::RowHash
        };
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            cfg,
            ShardedConfig {
                partitioner,
                chunk_tuples: chunk,
                channel_depth: 2,
                round_tuples: 128,
                ..ShardedConfig::with_shards(shards)
            },
        )
        .unwrap();
        let mut snap = None;
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            engine.update(r, c, v).unwrap();
            if i == flush_at {
                snap = Some((engine.snapshot().unwrap(), i));
                engine.flush().unwrap();
            }
        }
        // A column's degree splits across the row-partitioned shards: the
        // producer must sum per-shard stats before ranking.  Answers equal
        // the transposed flat reference; nothing materialises.
        prop_assert_eq!(engine.read_in_top_k(k), reference_top_k(&transposed, k));
        prop_assert_eq!(
            engine.read_in_degree_histogram(),
            {
                let mut t = transposed.clone();
                t.read_degree_histogram()
            }
        );
        let probe = updates[0].1;
        let mut got = Vec::new();
        engine.read_col(probe, &mut got);
        let mut expect = Vec::new();
        {
            let mut t = transposed.clone();
            t.read_row(probe, &mut expect);
        }
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(engine.read_col_degree(probe), expect.len());
        prop_assert_eq!(engine.aggregate_stats().unwrap().materializations, 0);
        // Column bands fan out to every shard and come back (col, row)
        // sorted.
        let mut band = Vec::new();
        engine.read_col_range(0, DIM / 2, &mut |r, c, v| band.push((r, c, v)));
        prop_assert_eq!(band, reference_col_band(&transposed, 0, DIM / 2));
        // Batched reads group keys by owning shard yet answer in request
        // order.
        let rows: Vec<u64> = updates.iter().take(6).map(|&(r, _, _)| r).collect();
        let singles: Vec<Vec<(u64, u64)>> = rows.iter().map(|&r| {
            let mut out = Vec::new();
            engine.read_row(r, &mut out);
            out
        }).collect();
        prop_assert_eq!(engine.read_rows(&rows), singles);
        let keys: Vec<(u64, u64)> = updates.iter().take(6).map(|&(r, c, _)| (r, c)).collect();
        let points: Vec<Option<u64>> =
            keys.iter().map(|&(r, c)| engine.read_get(r, c)).collect();
        prop_assert_eq!(engine.read_get_many(&keys), points);
        // The engine-wide snapshot froze the captured prefix.
        if let Some((mut snap, at)) = snap {
            let prefix = build_transposed(&updates[..=at]);
            prop_assert_eq!(snap.read_in_top_k(4), reference_top_k(&prefix, 4));
            let mut got = Vec::new();
            snap.read_col(probe, &mut got);
            let mut expect = Vec::new();
            {
                let mut p = prefix.clone();
                p.read_row(probe, &mut expect);
            }
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn windowed_rotation_column_index_matches_sweep_and_retained_union(
        updates in update_stream(300),
        cuts in cut_schedule(),
        window in 10u64..120,
        max_windows in 1usize..4,
        k in 0usize..10,
    ) {
        let cfg = HierConfig::from_cuts(cuts).unwrap();
        let mut w =
            WindowedHierMatrix::<u64>::new(DIM, DIM, cfg, window, max_windows).unwrap();
        for (i, &(r, c, v)) in updates.iter().enumerate() {
            w.update(r, c, v).unwrap();
            if i == updates.len() / 2 {
                // A mid-stream column query exercises the stale-mark +
                // wholesale-rebuild path across later rotations.
                let _ = w.read_in_top_k(3);
            }
        }
        // Eviction makes incremental column maintenance inexact, so the
        // union index rebuilds wholesale; answers must equal the cursor
        // sweep over retained windows and the transposed retained union.
        let retained = w.materialize_retained().unwrap();
        let (rrows, rcols, rvals) = retained.extract_tuples();
        let retained_t =
            Matrix::from_tuples(DIM, DIM, &rcols, &rrows, &rvals, Plus).unwrap();
        prop_assert_eq!(w.read_in_top_k(k), w.sweep_in_top_k(k));
        prop_assert_eq!(w.read_in_top_k(k), reference_top_k(&retained_t, k));
        prop_assert_eq!(
            w.read_in_degree_histogram(),
            w.sweep_in_degree_histogram()
        );
        let probe = updates[updates.len() - 1].1;
        let mut got = Vec::new();
        w.read_col(probe, &mut got);
        let mut swept = Vec::new();
        w.sweep_col(probe, &mut swept);
        prop_assert_eq!(&got, &swept);
        let expect_deg = retained_t.dcsr().row(probe).map_or(0, |(c, _)| c.len());
        prop_assert_eq!(w.read_col_degree(probe), w.sweep_col_degree(probe));
        prop_assert_eq!(w.read_col_degree(probe), expect_deg);
        prop_assert_eq!(w.read_col_reduce(probe), w.sweep_col_reduce(probe));
        let mut band = Vec::new();
        w.read_col_range(0, DIM / 2, &mut |r, c, v| band.push((r, c, v)));
        let mut band_swept = Vec::new();
        w.sweep_col_range(0, DIM / 2, &mut |r, c, v| band_swept.push((r, c, v)));
        prop_assert_eq!(band, band_swept);
    }
}

/// In-degree top-k through the generic algorithm layer equals the
/// out-degree ranking of the explicitly transposed stream, for flat,
/// hierarchical and sharded systems alike (the asymmetry the column twin
/// removes: both directions are now O(k) reads, not sweeps).
#[test]
fn in_top_k_over_twin_matches_transposed_out_top_k() {
    let mut flat = Matrix::<u64>::new(DIM, DIM);
    let mut flat_t = Matrix::<u64>::new(DIM, DIM);
    let mut hier =
        HierMatrix::<u64>::new(DIM, DIM, HierConfig::from_cuts(vec![8, 64]).unwrap()).unwrap();
    let mut sharded = ShardedHierMatrix::<u64>::with_shards(DIM, DIM, 3).unwrap();
    for i in 0..4000u64 {
        let (r, c, v) = ((i % 53) * 1_000_003, (i * 11) % 83, i % 3 + 1);
        flat.accum_element(r, c, v).unwrap();
        flat_t.accum_element(c, r, v).unwrap();
        hier.update(r, c, v).unwrap();
        sharded.update(r, c, v).unwrap();
    }
    let expect = flat_t.read_top_k(9);
    assert_eq!(flat.read_in_top_k(9), expect);
    assert_eq!(hier.read_in_top_k(9), expect);
    assert_eq!(sharded.read_in_top_k(9), expect);
}
