//! Cross-crate integration tests: the hierarchical matrix must represent
//! exactly the same mathematical object as a flat GraphBLAS matrix and as a
//! D4M associative array fed the same stream, regardless of the cut
//! schedule, and the whole pipeline (workload -> hierarchy -> analytics)
//! must hold together.

use hyperstream::prelude::*;

fn stream(n: usize, seed: u64) -> Vec<Edge> {
    let gen = PowerLawGenerator::new(PowerLawConfig {
        vertices: 5_000,
        dim: 1 << 32,
        seed,
        ..PowerLawConfig::default()
    });
    gen.take(n).collect()
}

#[test]
fn hierarchy_equals_flat_for_many_cut_schedules() {
    let edges = stream(20_000, 11);
    // Flat reference.
    let mut flat = Matrix::<u64>::new(1 << 32, 1 << 32);
    for e in &edges {
        flat.accum_element(e.src, e.dst, e.weight).unwrap();
    }
    flat.wait();

    for cuts in [
        vec![16u64],
        vec![64, 512],
        vec![100, 1_000, 10_000],
        vec![1 << 12, 1 << 15, 1 << 18],
    ] {
        let cfg = HierConfig::from_cuts(cuts.clone()).unwrap();
        let mut hier = HierMatrix::<u64>::new(1 << 32, 1 << 32, cfg).unwrap();
        for e in &edges {
            hier.update(e.src, e.dst, e.weight).unwrap();
        }
        let snap = hier.materialize();
        assert_eq!(
            snap.extract_tuples(),
            flat.extract_tuples(),
            "hierarchy with cuts {cuts:?} diverged from the flat matrix"
        );
    }
}

#[test]
fn hierarchy_equals_d4m_assoc_on_the_same_stream() {
    let edges = stream(3_000, 23);
    let mut hier = HierMatrix::<u64>::with_default_config(1 << 32, 1 << 32).unwrap();
    let mut assoc = HierAssoc::with_default_config();
    for e in &edges {
        hier.update(e.src, e.dst, e.weight).unwrap();
        assoc.update(&e.src.to_string(), &e.dst.to_string(), e.weight as f64);
    }
    // Same total weight and same number of distinct cells.
    assert_eq!(hier.total_weight(), assoc.total() as u64);
    assert_eq!(hier.nvals_exact(), assoc.materialize().nnz());
    // Spot-check a handful of cells through both APIs.
    for e in edges.iter().take(50) {
        let h = hier.get(e.src, e.dst).unwrap();
        let a = assoc.get(&e.src.to_string(), &e.dst.to_string()).unwrap();
        assert_eq!(h as f64, a);
    }
}

#[test]
fn baseline_stores_agree_with_graphblas_content() {
    // Every system — the hierarchy included — ingests the stream through the
    // same `StreamingSink` interface the measurement harness uses.
    let edges = stream(5_000, 31);
    let (rows, cols, vals) = edges_to_tuples(&edges);

    let mut hier = HierMatrix::<u64>::with_default_config(1 << 32, 1 << 32).unwrap();
    hier.insert_batch(&rows, &cols, &vals).unwrap();
    StreamingSink::flush(&mut hier).unwrap();
    let expected_cells = StreamingSink::nvals(&hier);
    let expected_weight = StreamingSink::total_weight(&hier);

    let mut sinks: Vec<Box<dyn StreamingSink<u64>>> = vec![
        Box::new(TabletStore::new()),
        Box::new(ArrayStore::new()),
        Box::new(RowStore::new()),
        Box::new(DocStore::new()),
    ];
    for sink in &mut sinks {
        sink.insert_batch(&rows, &cols, &vals).unwrap();
        sink.flush().unwrap();
        assert_eq!(
            sink.nvals(),
            expected_cells,
            "{} cell count",
            sink.sink_name()
        );
        assert_eq!(
            sink.total_weight(),
            expected_weight,
            "{} total weight",
            sink.sink_name()
        );
    }
}

#[test]
fn instance_pool_preserves_global_content() {
    let edges = stream(8_000, 41);
    let mut pool = InstancePool::<u64>::new(
        4,
        1 << 32,
        1 << 32,
        HierConfig::from_cuts(vec![64, 1024]).unwrap(),
    )
    .unwrap();
    let mut flat = Matrix::<u64>::new(1 << 32, 1 << 32);
    for e in &edges {
        pool.update(e.src, e.dst, e.weight).unwrap();
        flat.accum_element(e.src, e.dst, e.weight).unwrap();
    }
    flat.wait();
    let union = pool.materialize_union().unwrap();
    assert_eq!(union.extract_tuples(), flat.extract_tuples());
    assert_eq!(pool.total_updates(), edges.len() as u64);
}

#[test]
fn end_to_end_traffic_analytics_pipeline() {
    // workload -> hierarchical matrix -> graph analytics, all through the
    // facade crate's prelude.
    let dim = IpVersion::V4.dim();
    let mut m = HierMatrix::<u64>::with_default_config(dim, dim).unwrap();
    let gen = IpTrafficGenerator::new(IpTrafficConfig {
        supernodes: 8,
        supernode_fraction: 0.5,
        seed: 99,
        ..IpTrafficConfig::default()
    });
    let supers: Vec<u64> = gen.supernode_addresses().to_vec();
    for flow in gen.take(30_000) {
        m.update(flow.src, flow.dst, flow.weight).unwrap();
    }
    let snap = m.materialize();
    assert!(snap.nvals() > 1000);

    // Per-destination packet counts must rank a supernode near the top.
    let per_dest = reduce_cols(&snap, PlusMonoid);
    let top: Vec<u64> = per_dest.top_k(8).into_iter().map(|(a, _)| a).collect();
    assert!(
        top.iter().any(|a| supers.contains(a)),
        "no supernode among the top destinations"
    );

    // Total packets conserved through the whole pipeline.
    let total_from_reduce: u64 = reduce_scalar(&snap, PlusMonoid);
    assert_eq!(total_from_reduce, m.total_weight());
}
