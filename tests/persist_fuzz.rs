#![recursion_limit = "512"] // the proptest macro expansion is token-heavy

//! Byte-mutation fuzz for the on-disk parsers (`crates/hier/src/persist`).
//!
//! Build a valid durable store, then mutate it — flip a byte, truncate a
//! file, or append garbage, at an arbitrary position in an arbitrary
//! store file — and reopen.  The strict-parsing contract says exactly two
//! outcomes are legal:
//!
//! * a **typed refusal**: [`GrbError::Corruption`] (never a panic, never
//!   an out-of-bounds read, never an unbounded allocation), or
//! * a **clean recovery**: `Ok`, with contents equal to the flat oracle
//!   of some acknowledged prefix of the update stream (a mutation in the
//!   WAL tail is indistinguishable from a crash-torn tail; a mutation in
//!   a level file's inter-section padding is outside every checksummed
//!   byte and must be ignored).
//!
//! Anything else — a panic, a hang, or recovered contents that match no
//! prefix — is a parser bug.  Runs in the default sweep (no failpoints
//! needed: the corruption is literal bytes on disk).

use hyperstream::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const DIM: u64 = 1 << 32;

struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!("hs-fuzz-{}-{}-{}", std::process::id(), name, n));
        let _ = std::fs::remove_dir_all(&p);
        Self(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn oracle(updates: &[(u64, u64, u64)]) -> BTreeMap<(u64, u64), u64> {
    let mut m = BTreeMap::new();
    for &(r, c, v) in updates {
        *m.entry((r, c)).or_insert(0) += v;
    }
    m
}

fn contents(m: &HierMatrix<u64>) -> BTreeMap<(u64, u64), u64> {
    let (r, c, v) = m.materialize_ref().extract_tuples();
    let mut out = BTreeMap::new();
    for i in 0..r.len() {
        *out.entry((r[i], c[i])).or_insert(0) += v[i];
    }
    out
}

/// Build a store holding `updates` (flushed half-way so both level files
/// and a non-empty WAL tail exist), leaving it crash-shaped via `forget`.
fn build_store(dir: &Path, updates: &[(u64, u64, u64)]) {
    let mut m = HierMatrix::<u64>::new_durable(
        DIM,
        DIM,
        HierConfig::from_cuts(vec![8, 64]).unwrap(),
        DurableConfig::new(dir),
    )
    .unwrap();
    let half = updates.len() / 2;
    for &(r, c, v) in &updates[..half] {
        m.update(r, c, v).unwrap();
    }
    m.flush().unwrap();
    for &(r, c, v) in &updates[half..] {
        m.update(r, c, v).unwrap();
    }
    std::mem::forget(m);
}

fn store_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..120, 0u64..120, 1u64..5), 64..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

/// The three shapes of disk rot under test.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    FlipByte,
    Truncate,
    Extend,
}

fn apply_mutation(path: &Path, kind: Mutation, pos_ppm: u64, garbage: u8) {
    let mut bytes = std::fs::read(path).unwrap();
    let len = bytes.len() as u64;
    let pos = (len * pos_ppm / 1_000_000).min(len.saturating_sub(1)) as usize;
    match kind {
        Mutation::FlipByte => {
            if !bytes.is_empty() {
                bytes[pos] ^= garbage.max(1); // never a zero-flip no-op
            }
        }
        Mutation::Truncate => bytes.truncate(pos),
        Mutation::Extend => bytes.extend(std::iter::repeat(garbage).take(1 + garbage as usize)),
    }
    std::fs::write(path, &bytes).unwrap();
}

/// `got` equals the oracle of some update prefix.
fn is_some_prefix(got: &BTreeMap<(u64, u64), u64>, updates: &[(u64, u64, u64)]) -> bool {
    (0..=updates.len()).any(|k| &oracle(&updates[..k]) == got)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mutated_store_is_refused_typed_or_recovered_to_a_prefix(
        updates in update_stream(200),
        file_ppm in 0u64..1_000_000,
        pos_ppm in 0u64..1_000_000,
        kind_sel in 0u8..3,
        garbage in 0u8..255,
    ) {
        let dir = TempDir::new("mutate");
        build_store(dir.path(), &updates);
        let files = store_files(dir.path());
        prop_assert!(!files.is_empty());
        let target = &files[(files.len() as u64 * file_ppm / 1_000_000) as usize % files.len()];
        let kind = [Mutation::FlipByte, Mutation::Truncate, Mutation::Extend]
            [kind_sel as usize];
        apply_mutation(target, kind, pos_ppm, garbage);

        // Strict open: typed error or a prefix — never a panic, never an
        // invented or silently wrong answer.
        match HierMatrix::<u64>::open(dir.path()) {
            Ok(m) => {
                let got = contents(&m);
                prop_assert!(
                    is_some_prefix(&got, &updates),
                    "{:?} of {:?} recovered contents matching no update prefix",
                    kind, target.file_name(),
                );
            }
            Err(GrbError::Corruption { detail }) => {
                prop_assert!(!detail.is_empty(), "corruption without a detail string");
            }
            Err(other) => {
                prop_assert!(false, "non-corruption error {other:?} from mutated store");
            }
        }

        // Salvage open may additionally survive level-file rot (loading
        // the bad level empty), but must never panic and must report any
        // level it dropped.
        if let Ok(m) =
            HierMatrix::<u64>::open_with(DurableConfig::new(dir.path()).salvage(true))
        {
            let rep = m.recovery_report().unwrap();
            if rep.corrupt_levels.is_empty() {
                prop_assert!(is_some_prefix(&contents(&m), &updates));
            }
        }
    }

    // The WAL-specific half of the contract, biased to hit the tail: a
    // mutation strictly inside the WAL can cost at most the frames at and
    // after the mutated byte — everything before it must survive.
    #[test]
    fn wal_mutation_never_loses_preceding_frames(
        updates in update_stream(160),
        pos_ppm in 0u64..1_000_000,
        garbage in 1u8..255,
    ) {
        let dir = TempDir::new("wal-rot");
        build_store(dir.path(), &updates);
        let wal = store_files(dir.path())
            .into_iter()
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .expect("store has a live WAL");
        let len = std::fs::metadata(&wal).unwrap().len();
        if len <= 16 {
            // The last update triggered a cascade-checkpoint and rotated
            // the WAL empty: just a header, no tail to mutate.
            return;
        }
        // Keep the 16-byte header intact: it is fsynced before the
        // manifest references the file, so header rot models a worn
        // manifest, not a crash (the generic fuzz above covers it).
        let pos = (16 + (len - 16) * pos_ppm / 1_000_000).min(len - 1).max(16) as usize;
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[pos] ^= garbage;
        std::fs::write(&wal, &bytes).unwrap();

        let m = HierMatrix::<u64>::open(dir.path()).unwrap();
        let got = contents(&m);
        prop_assert!(is_some_prefix(&got, &updates));
        // Lower bound: the checkpointed half can never be lost to WAL rot.
        let half = oracle(&updates[..updates.len() / 2]);
        for (k, v) in &half {
            prop_assert!(
                got.get(k).is_some_and(|g| g >= v),
                "checkpointed entry {k:?} lost to a WAL mutation"
            );
        }
    }
}
