#![cfg(feature = "failpoints")]
#![recursion_limit = "256"] // the proptest macro expansion is token-heavy

//! Chaos suite for the supervised sharded engine (`--features failpoints`).
//!
//! Each case arms a deterministic failpoint (worker panic, injected apply
//! error, or an injected stall), drives a stream into a
//! `ShardedHierMatrix`, and asserts the fault-tolerance contract:
//!
//! * a worker panic never panics the producer and never hangs it — every
//!   wait is bounded by `ShardedConfig::wait_timeout`;
//! * failures surface as *typed* errors (`GrbError::ShardsLost`,
//!   `GrbError::Timeout`, `GrbError::Injected`) naming the lost shards;
//! * with `degraded_reads`, answers from the survivors are byte-identical
//!   to a flat oracle restricted to the surviving row bands;
//! * `respawn_shard` with replay enabled rebuilds a shard *exactly* when
//!   the loss happened before any barrier retired the replay buffer;
//! * dropping the engine mid-fault (barrier outstanding, worker dead)
//!   completes in bounded time.
//!
//! The failpoint registry is process-global, so every test serialises
//! through [`exclusive`], which also disarms all sites on scope exit.
//! That keeps armed sites from leaking into a concurrently running test.

use hyperstream::hier::failpoint::{self, FailAction};
use hyperstream::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const DIM: u64 = 1 << 32;

/// Global test-order lock: held for the duration of any test that arms
/// failpoints.  Disarms everything when released, even on panic.
static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct Exclusive(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for Exclusive {
    fn drop(&mut self) {
        failpoint::disarm_all();
    }
}

fn exclusive() -> Exclusive {
    // A previous test panicking under the lock poisons it; the registry is
    // reset below, so the poison carries no state worth propagating.
    let guard = REGISTRY_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    failpoint::disarm_all();
    quiet_failpoint_panics();
    Exclusive(guard)
}

/// Injected worker panics are the *point* of this suite; silence their
/// default backtrace spew while leaving every other panic loud.
fn quiet_failpoint_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                previous(info);
            }
        }));
    });
}

/// A stream of updates drawn from a small id pool (duplicates included)
/// scattered over the hypersparse index space.
fn update_stream(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    prop::collection::vec((0u64..200, 0u64..200, 1u64..5), 64..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(r, c, w)| ((r * 20_000_019) % DIM, (c * 40_000_003) % DIM, w))
            .collect()
    })
}

fn build_flat(updates: &[(u64, u64, u64)]) -> Matrix<u64> {
    let mut m = Matrix::<u64>::new(DIM, DIM);
    for &(r, c, v) in updates {
        m.accum_element(r, c, v).unwrap();
    }
    m.wait();
    m
}

/// Reference ranking (degree descending, id ascending) from a flat matrix.
fn reference_top_k(flat: &Matrix<u64>, k: usize) -> Vec<(u64, usize)> {
    let d = flat.dcsr();
    let mut degs: Vec<(u64, usize)> = (0..d.nrows_nonempty())
        .map(|slot| (d.row_ids()[slot], d.row_slot(slot).0.len()))
        .collect();
    degs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    degs.truncate(k);
    degs
}

/// A small engine with knobs sized so every few updates reach a worker.
fn chaos_config(shards: usize) -> ShardedConfig {
    ShardedConfig {
        chunk_tuples: 4,
        channel_depth: 2,
        round_tuples: 64,
        wait_timeout: Duration::from_secs(10),
        ..ShardedConfig::with_shards(shards)
    }
}

/// Wait (bounded) for a worker loss to become visible producer-side; a
/// panicking worker clears its liveness flag when its thread unwinds, a
/// hair after the failpoint fires.
fn await_loss(engine: &ShardedHierMatrix<u64>, victim: usize, bound: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < bound {
        if engine.lost_shards().contains(&victim) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A worker panic mid-stream: the producer must never panic or hang,
    // every surfaced error must be `ShardsLost` naming exactly the victim,
    // and health must degrade to report it.  Strict mode (no degraded
    // reads): reads touching the loss fail typed, and the infallible
    // `MatrixReader` signatures answer defaults while latching the error.
    #[test]
    fn worker_panic_mid_stream_is_typed_and_bounded(
        updates in update_stream(400),
        shards in 2usize..=8,
        victim_sel in 0usize..8,
        nth in 1u64..4,
    ) {
        let _fp = exclusive();
        let victim = victim_sel % shards;
        failpoint::arm_at("worker-apply", Some(victim), nth, FailAction::Panic);
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![8, 64]).unwrap(),
            chaos_config(shards),
        )
        .unwrap();
        for &(r, c, v) in &updates {
            if let Err(e) = engine.update(r, c, v) {
                match e {
                    GrbError::ShardsLost { shards: lost, .. } => {
                        prop_assert_eq!(lost, vec![victim])
                    }
                    other => prop_assert!(false, "unexpected ingest error: {other}"),
                }
            }
        }
        let flushed = engine.flush();
        if failpoint::fired("worker-apply") == 0 {
            // The victim never saw its nth batch — nothing may have failed.
            prop_assert!(flushed.is_ok());
            prop_assert_eq!(engine.health(), EngineHealth::Healthy);
            return;
        }
        // The flush barrier discovers the death: typed error, degraded
        // health, and strict reads refuse while infallible reads latch.
        prop_assert!(
            matches!(&flushed, Err(GrbError::ShardsLost { shards, .. }) if shards == &vec![victim]),
            "flush reported {flushed:?}"
        );
        prop_assert_eq!(engine.health(), EngineHealth::Degraded { lost: vec![victim] });
        prop_assert!(matches!(
            engine.try_read_top_k(5),
            Err(GrbError::ShardsLost { .. })
        ));
        prop_assert!(engine.read_top_k(5).is_empty());
        prop_assert!(matches!(
            engine.take_read_error(),
            Some(GrbError::ShardsLost { .. })
        ));
        prop_assert!(engine.take_read_error().is_none());
        prop_assert!(matches!(
            engine.materialize(),
            Err(GrbError::ShardsLost { .. })
        ));
    }

    // Degraded reads after a worker panic answer from the survivors,
    // byte-identical to a flat oracle restricted to the surviving row
    // bands, with the lost band reported on every answer.
    #[test]
    fn degraded_reads_match_surviving_shard_oracle(
        updates in update_stream(400),
        shards in 2usize..=8,
        victim_sel in 0usize..8,
        k in 1usize..10,
    ) {
        let _fp = exclusive();
        let victim = victim_sel % shards;
        failpoint::arm_at("worker-apply", Some(victim), 1, FailAction::Panic);
        let config = ShardedConfig {
            degraded_reads: true,
            ..chaos_config(shards)
        };
        let partitioner = config.partitioner;
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![8, 64]).unwrap(),
            config,
        )
        .unwrap();
        for &(r, c, v) in &updates {
            let _ = engine.update(r, c, v);
        }
        // Flush reports the loss (mutating the stream under a fault is
        // never silent) while draining the survivors.
        let flushed = engine.flush();
        if failpoint::fired("worker-apply") == 0 {
            prop_assert!(flushed.is_ok());
            return;
        }
        prop_assert!(flushed.is_err());
        prop_assert_eq!(engine.health(), EngineHealth::Degraded { lost: vec![victim] });
        // The oracle: the same stream, minus every row the victim owns.
        let surviving: Vec<(u64, u64, u64)> = updates
            .iter()
            .copied()
            .filter(|&(r, _, _)| partitioner.shard(r, DIM, shards) != victim)
            .collect();
        let oracle = build_flat(&surviving);
        prop_assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            oracle.extract_tuples()
        );
        prop_assert_eq!(engine.last_answer_lost(), &[victim]);
        prop_assert_eq!(engine.try_read_nnz().unwrap(), oracle.nvals());
        prop_assert_eq!(engine.try_read_top_k(k).unwrap(), reference_top_k(&oracle, k));
        // A row owned by the lost shard answers empty (and records why).
        if let Some(&(lost_row, _, _)) = updates
            .iter()
            .find(|&&(r, _, _)| partitioner.shard(r, DIM, shards) == victim)
        {
            let mut out = Vec::new();
            engine.try_read_row(lost_row, &mut out).unwrap();
            prop_assert!(out.is_empty());
            prop_assert_eq!(engine.last_answer_lost(), &[victim]);
        }
    }

    // Respawn with replay: a worker killed before any barrier retires the
    // replay buffer is rebuilt *exactly* — `lost_tuples == 0` and the
    // recovered engine equals the flat accumulation of the full stream.
    #[test]
    fn respawn_with_replay_recovers_exactly(
        updates in update_stream(400),
        shards in 2usize..=6,
        victim_sel in 0usize..6,
    ) {
        let _fp = exclusive();
        let victim = victim_sel % shards;
        failpoint::arm_at("worker-apply", Some(victim), 1, FailAction::Panic);
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![8, 64]).unwrap(),
            ShardedConfig {
                replay_limit_tuples: 1 << 20,
                ..chaos_config(shards)
            },
        )
        .unwrap();
        // Stream without a single barrier: no flush, no query, so nothing
        // retires the replay buffers before the fault.
        for &(r, c, v) in &updates {
            let _ = engine.update(r, c, v);
        }
        if failpoint::fired("worker-apply") == 0 {
            engine.flush().unwrap();
            prop_assert_eq!(engine.health(), EngineHealth::Healthy);
            return;
        }
        prop_assert!(await_loss(&engine, victim, Duration::from_secs(10)));
        let recovery = engine.respawn_shard(victim).unwrap();
        prop_assert_eq!(recovery.shard, victim);
        prop_assert_eq!(recovery.lost_tuples, 0, "loss preceded every barrier");
        prop_assert_eq!(engine.health(), EngineHealth::Healthy);
        engine.flush().unwrap();
        let flat = build_flat(&updates);
        prop_assert_eq!(
            engine.materialize().unwrap().extract_tuples(),
            flat.extract_tuples()
        );
        prop_assert_eq!(
            engine.total_weight_f64(),
            updates.iter().map(|u| u.2).sum::<u64>() as f64
        );
    }
}

/// Satellite regression: a worker-side apply error (injected, but standing
/// in for any failed batch apply) is latched and surfaces in the *next*
/// barrier ack — `flush` reports it — instead of being silently dropped.
/// The worker stays alive and the engine recovers on the next round.
#[test]
fn injected_apply_error_surfaces_at_flush() {
    let _fp = exclusive();
    failpoint::arm("worker-apply-error", 1, FailAction::Error);
    let mut engine = ShardedHierMatrix::<u64>::with_shards(DIM, DIM, 2).unwrap();
    engine.update(7, 9, 3).unwrap();
    let flushed = engine.flush();
    assert_eq!(flushed, Err(GrbError::Injected("worker-apply-error")));
    assert_eq!(engine.health(), EngineHealth::Healthy);
    // The latched error was consumed by the report; the engine is clean.
    engine.update(8, 10, 4).unwrap();
    engine.flush().unwrap();
}

/// An injected stall longer than `wait_timeout` surfaces as a typed
/// `Timeout` — and a slow worker is *not* a dead one: health stays
/// `Healthy` and the engine answers exactly once the stall clears.
#[test]
fn stalled_worker_times_out_without_being_marked_lost() {
    let _fp = exclusive();
    failpoint::arm(
        "worker-barrier",
        1,
        FailAction::Sleep(Duration::from_millis(400)),
    );
    let mut engine = ShardedHierMatrix::<u64>::new(
        DIM,
        DIM,
        HierConfig::from_cuts(vec![8, 64]).unwrap(),
        ShardedConfig {
            wait_timeout: Duration::from_millis(50),
            ..ShardedConfig::with_shards(2)
        },
    )
    .unwrap();
    engine.update(3, 4, 5).unwrap();
    engine.update(1 << 20, 4, 6).unwrap();
    let flushed = engine.flush();
    assert!(
        matches!(flushed, Err(GrbError::Timeout { .. })),
        "expected a typed timeout, got {flushed:?}"
    );
    assert_eq!(engine.health(), EngineHealth::Healthy);
    // Let the stall clear, then the same engine answers in full.
    std::thread::sleep(Duration::from_millis(450));
    engine.flush().unwrap();
    assert_eq!(engine.try_read_nnz().unwrap(), 2);
}

/// Drop-under-load: tearing the engine down while a barrier is still
/// outstanding (its ack wait timed out against a stalled worker) must
/// complete in bounded time — the `Drop` join waits for the stall to
/// clear, never forever.
#[test]
fn drop_with_barrier_outstanding_is_bounded() {
    let _fp = exclusive();
    failpoint::arm(
        "worker-barrier",
        1,
        FailAction::Sleep(Duration::from_millis(300)),
    );
    let start = Instant::now();
    {
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![8, 64]).unwrap(),
            ShardedConfig {
                wait_timeout: Duration::from_millis(20),
                ..ShardedConfig::with_shards(3)
            },
        )
        .unwrap();
        for i in 0..32u64 {
            engine.update(i * 1_000_003, i, 1).unwrap();
        }
        let flushed = engine.flush();
        assert!(
            matches!(flushed, Err(GrbError::Timeout { .. })),
            "expected a timed-out barrier, got {flushed:?}"
        );
        // Engine dropped here with the slept barrier still in flight.
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "drop with an outstanding barrier took {:?}",
        start.elapsed()
    );
}

/// Drop-under-load: dropping an engine whose worker has already panicked
/// is clean and bounded — the poison-pill loop must not wait on the dead
/// worker's channel, and the captured panic must not resurface.
#[test]
fn drop_after_worker_panic_is_bounded() {
    let _fp = exclusive();
    failpoint::arm_at("worker-apply", Some(0), 1, FailAction::Panic);
    let start = Instant::now();
    {
        let mut engine = ShardedHierMatrix::<u64>::new(
            DIM,
            DIM,
            HierConfig::from_cuts(vec![8, 64]).unwrap(),
            ShardedConfig {
                chunk_tuples: 1,
                ..chaos_config(3)
            },
        )
        .unwrap();
        for i in 0..64u64 {
            let _ = engine.update(i * 1_000_003, i, 1);
        }
        assert!(
            await_loss(&engine, 0, Duration::from_secs(10)),
            "victim worker never died"
        );
        // Engine dropped here with shard 0 dead and batches still staged.
    }
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "drop after a worker panic took {:?}",
        start.elapsed()
    );
}

/// Hierarchy-level fault sites compose with the sharded supervisor: an
/// injected `HierMatrix` flush failure inside one worker is latched and
/// reported by the engine-level flush, exactly like a batch-apply error.
#[test]
fn injected_hier_flush_error_propagates_through_engine() {
    let _fp = exclusive();
    failpoint::arm("hier-flush", 1, FailAction::Error);
    let mut engine = ShardedHierMatrix::<u64>::with_shards(DIM, DIM, 2).unwrap();
    engine.update(11, 13, 2).unwrap();
    let flushed = engine.flush();
    assert_eq!(flushed, Err(GrbError::Injected("hier-flush")));
    assert_eq!(engine.health(), EngineHealth::Healthy);
    engine.flush().unwrap();
}
